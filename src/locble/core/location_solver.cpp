#include "locble/core/location_solver.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "locble/common/linalg.hpp"
#include "locble/obs/obs.hpp"

namespace locble::core {

namespace {

constexpr double kLog10 = 2.302585092994046;

/// Residual statistics with per-segment gammas. One prediction pass over
/// the samples (residuals parked in `resid_buf`, sized >= count by the
/// caller) plus one cheap pass for the centered second moment — no
/// temporary vector, no allocation.
ResidualStats residual_stats_kernel(const FusedSample* samples, std::size_t count,
                                    const locble::Vec2& location, double exponent,
                                    const double* gammas, int k, double* resid_buf) {
    ResidualStats out;
    if (count == 0) return out;
    double sum = 0.0, ss = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        const auto& s = samples[i];
        const double dx = location.x + s.p;
        const double dy = location.y + s.q;
        const double g = gammas[static_cast<std::size_t>(std::min(s.segment, k - 1))];
        const double r = s.rssi - predict_rssi_db(g, exponent, dx * dx + dy * dy);
        resid_buf[i] = r;
        sum += r;
        ss += r * r;
    }
    out.mean_db = sum / static_cast<double>(count);
    double m2 = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        const double d = resid_buf[i] - out.mean_db;
        m2 += d * d;
    }
    out.stddev_db = std::sqrt(m2 / static_cast<double>(count));
    out.rms_db = std::sqrt(ss / static_cast<double>(count));
    const double sigma = std::max(out.stddev_db, 1e-6);
    out.confidence = std::exp(-(out.mean_db * out.mean_db) / (2.0 * sigma * sigma));
    return out;
}

/// Gauss-Newton refinement of (x, h, Gamma_1..Gamma_k) at fixed exponent,
/// minimizing the dB-domain residual — the maximum-likelihood objective
/// under Gaussian RSS noise, with one power offset per environment segment
/// (the paper's Gamma(e)). Gammas are projected into [gamma_min, gamma_max]
/// each step.
///
/// Allocation-free: the jacobian row has exactly three nonzeros (d/dx,
/// d/dh and the sample's segment gamma), so JtJ/Jtr are accumulated in one
/// fused sparse pass into flat workspace storage (jtj is dim*dim, jtr and
/// delta are dim, caller-sized); the normal system is solved in place with
/// solve_linear_flat.
void refine_fit_db(double* jtj, double* jtr, double* delta,
                   const FusedSample* samples, std::size_t count, double exponent,
                   locble::Vec2& location, double* gammas, std::size_t k,
                   double gamma_min, double gamma_max) {
    constexpr int kIterations = 12;
    const std::size_t dim = 2 + k;
    double x = location.x, h = location.y;

    if (k == 1) {
        // Single-segment fast path (the common case: dim == 3). Scalar
        // accumulators perform the same additions in the same order as the
        // generic path below — results are bit-identical — but live in
        // registers instead of going through the workspace pointer, which
        // the compiler must otherwise assume aliases the sample stream.
        const double c = -10.0 * exponent / kLog10;
        double gamma = gammas[0];
        for (int it = 0; it < kIterations; ++it) {
            double a00 = 0.0, a01 = 0.0, a02 = 0.0, a11 = 0.0, a12 = 0.0, a22 = 0.0;
            double r0 = 0.0, r1 = 0.0, r2 = 0.0;
            for (std::size_t i = 0; i < count; ++i) {
                const auto& s = samples[i];
                const double dx = x + s.p;
                const double dy = h + s.q;
                const double l2 = std::max(dx * dx + dy * dy, kMinDistanceSq);
                const double r = s.rssi - predict_rssi_db(gamma, exponent, l2);
                const double jx = c * dx / l2;
                const double jy = c * dy / l2;
                r0 += jx * r;
                r1 += jy * r;
                r2 += 1.0 * r;
                a00 += jx * jx;
                a01 += jx * jy;
                a02 += jx * 1.0;
                a11 += jy * jy;
                a12 += jy * 1.0;
                a22 += 1.0 * 1.0;
            }
            const double damping = 1e-6 + (it < 3 ? 0.1 : 0.0);
            jtj[0] = a00 * (1.0 + damping) + 1e-9;
            jtj[1] = a01;
            jtj[2] = a02;
            jtj[3] = a01;
            jtj[4] = a11 * (1.0 + damping) + 1e-9;
            jtj[5] = a12;
            jtj[6] = a02;
            jtj[7] = a12;
            jtj[8] = a22 * (1.0 + damping) + 1e-9;
            jtr[0] = r0;
            jtr[1] = r1;
            jtr[2] = r2;
            if (!locble::solve_linear_flat(jtj, jtr, delta, 3)) break;
            x += delta[0];
            h += delta[1];
            double step = std::abs(delta[0]) + std::abs(delta[1]);
            gamma = std::clamp(gamma + delta[2], gamma_min, gamma_max);
            step += std::abs(delta[2]);
            if (step < 1e-6) break;
        }
        gammas[0] = gamma;
        location = {x, h};
        return;
    }

    for (int it = 0; it < kIterations; ++it) {
        std::fill_n(jtj, dim * dim, 0.0);
        std::fill_n(jtr, dim, 0.0);
        const double c = -10.0 * exponent / kLog10;  // loop-invariant
        for (std::size_t i = 0; i < count; ++i) {
            const auto& s = samples[i];
            const double dx = x + s.p;
            const double dy = h + s.q;
            const double l2 = std::max(dx * dx + dy * dy, kMinDistanceSq);
            const auto seg = static_cast<std::size_t>(
                std::min<int>(s.segment, static_cast<int>(k) - 1));
            const double pred = predict_rssi_db(gammas[seg], exponent, l2);
            const double r = s.rssi - pred;
            const double jx = c * dx / l2;
            const double jy = c * dy / l2;
            // Fused sparse JtJ/Jtr accumulation (upper triangle; mirrored
            // once after the pass).
            jtr[0] += jx * r;
            jtr[1] += jy * r;
            jtr[2 + seg] += 1.0 * r;
            jtj[0 * dim + 0] += jx * jx;
            jtj[0 * dim + 1] += jx * jy;
            jtj[0 * dim + (2 + seg)] += jx * 1.0;
            jtj[1 * dim + 1] += jy * jy;
            jtj[1 * dim + (2 + seg)] += jy * 1.0;
            jtj[(2 + seg) * dim + (2 + seg)] += 1.0 * 1.0;
        }
        for (std::size_t a = 0; a < dim; ++a)
            for (std::size_t b = 0; b < a; ++b) jtj[a * dim + b] = jtj[b * dim + a];

        // Levenberg damping keeps early steps conservative; a small ridge
        // also guards segments with very few samples.
        const double damping = 1e-6 + (it < 3 ? 0.1 : 0.0);
        for (std::size_t a = 0; a < dim; ++a)
            jtj[a * dim + a] = jtj[a * dim + a] * (1.0 + damping) + 1e-9;

        if (!locble::solve_linear_flat(jtj, jtr, delta, dim)) break;
        x += delta[0];
        h += delta[1];
        double step = std::abs(delta[0]) + std::abs(delta[1]);
        for (std::size_t s = 0; s < k; ++s) {
            gammas[s] = std::clamp(gammas[s] + delta[2 + s], gamma_min, gamma_max);
            step += std::abs(delta[2 + s]);
        }
        if (step < 1e-6) break;
    }
    location = {x, h};
}

/// Initialize per-segment gammas from a single-gamma seed: each segment's
/// offset is the mean residual of its samples under the seed parameters.
/// Writes k gammas into `gammas`; `sum`/`cnt` are caller-provided scratch
/// of k entries each.
void init_segment_gammas(double* sum, int* cnt, const FusedSample* samples,
                         std::size_t count, const locble::Vec2& location,
                         double exponent, double gamma_seed, int k, double gamma_min,
                         double gamma_max, double* gammas) {
    if (k == 1) {  // scalar-accumulator twin of the loop below
        double s0 = 0.0;
        for (std::size_t i = 0; i < count; ++i) {
            const auto& s = samples[i];
            const double dx = location.x + s.p;
            const double dy = location.y + s.q;
            s0 += s.rssi - predict_rssi_db(gamma_seed, exponent, dx * dx + dy * dy);
        }
        double g = gamma_seed;
        if (count > 0) g += s0 / static_cast<double>(count);
        gammas[0] = std::clamp(g, gamma_min, gamma_max);
        return;
    }
    std::fill_n(sum, k, 0.0);
    std::fill_n(cnt, k, 0);
    for (std::size_t i = 0; i < count; ++i) {
        const auto& s = samples[i];
        const int seg = std::min(s.segment, k - 1);
        const double dx = location.x + s.p;
        const double dy = location.y + s.q;
        sum[seg] += s.rssi - predict_rssi_db(gamma_seed, exponent, dx * dx + dy * dy);
        cnt[seg] += 1;
    }
    for (int s = 0; s < k; ++s) {
        gammas[s] = gamma_seed;
        if (cnt[s] > 0) gammas[s] += sum[s] / cnt[s];
        gammas[s] = std::clamp(gammas[s], gamma_min, gamma_max);
    }
}

}  // namespace

ResidualStats residual_stats(const std::vector<FusedSample>& samples,
                             const locble::Vec2& location, double exponent,
                             double gamma_dbm) {
    std::vector<double> resid(samples.size());
    const double gammas[1] = {gamma_dbm};
    return residual_stats_kernel(samples.data(), samples.size(), location, exponent,
                                 gammas, 1, resid.data());
}

std::pair<double, double> exponent_band_for(channel::PropagationClass cls) {
    switch (cls) {
        case channel::PropagationClass::los: return {1.6, 2.4};
        case channel::PropagationClass::plos: return {2.1, 3.1};
        case channel::PropagationClass::nlos: return {2.7, 4.2};
    }
    return {1.2, 6.0};
}

bool LocationSolver::evaluate_grid_point(SolverWorkspace& ws,
                                         SolverWorkspace::GridPoint& gp,
                                         const FusedSample* samples, std::size_t count,
                                         bool lateral_ok, double gamma_min,
                                         double gamma_max, int k, double mean_rssi,
                                         bool warm,
                                         SolverWorkspace::CandidateSlot& slot) const {
    const double exponent = gp.n;
    const std::size_t uk = static_cast<std::size_t>(k);

    // Plausibility screen: discard non-physical attempts so a noise-
    // favoured exponent cannot launch the target outside radio range.
    const auto plausible = [&](const locble::Vec2& loc, const double* gammas) {
        if (loc.norm() > cfg_.max_range_m) return false;
        for (std::size_t s = 0; s < uk; ++s)
            if (gammas[s] < gamma_min - 1e-9 || gammas[s] > gamma_max + 1e-9)
                return false;
        return true;
    };

    // Gather refined attempts and keep the best *plausible* one.
    double best_rms = 1e300;
    locble::Vec2 best_loc;
    ResidualStats best_stats;
    const auto consider = [&](locble::Vec2 loc, double gamma_seed) {
        init_segment_gammas(ws.gam_sum.data(), ws.gam_cnt.data(), samples, count, loc,
                            exponent, gamma_seed, k, gamma_min, gamma_max,
                            ws.gam_cur.data());
        if (cfg_.use_gn_refinement)
            refine_fit_db(ws.jtj.data(), ws.jtr.data(), ws.delta.data(), samples,
                          count, exponent, loc, ws.gam_cur.data(), uk, gamma_min,
                          gamma_max);
        if (!plausible(loc, ws.gam_cur.data())) return;
        const ResidualStats st = residual_stats_kernel(
            samples, count, loc, exponent, ws.gam_cur.data(), k, ws.resid.data());
        if (st.rms_db < best_rms) {
            best_rms = st.rms_db;
            best_loc = loc;
            best_stats = st;
            std::copy_n(ws.gam_cur.data(), uk, ws.gam_best.data());
        }
    };

    bool used_multistart = false;
    if (warm) {
        // Warm start (coarse_to_fine sessions): Gauss-Newton seeded from
        // the previous flush's fit at this grid point. The carried gammas
        // are re-clamped to the current band and extended if new
        // environment segments appeared since.
        locble::Vec2 loc = gp.warm_loc;
        const std::size_t have = gp.warm_gammas.size();
        for (std::size_t s = 0; s < uk; ++s) {
            const double g = s < have ? gp.warm_gammas[s]
                                      : (have > 0 ? gp.warm_gammas[have - 1]
                                                  : 0.5 * (gamma_min + gamma_max));
            ws.gam_cur[s] = std::clamp(g, gamma_min, gamma_max);
        }
        if (cfg_.use_gn_refinement)
            refine_fit_db(ws.jtj.data(), ws.jtr.data(), ws.delta.data(), samples,
                          count, exponent, loc, ws.gam_cur.data(), uk, gamma_min,
                          gamma_max);
        if (!plausible(loc, ws.gam_cur.data())) return false;
        const ResidualStats st = residual_stats_kernel(
            samples, count, loc, exponent, ws.gam_cur.data(), k, ws.resid.data());
        best_rms = st.rms_db;
        best_loc = loc;
        best_stats = st;
        std::copy_n(ws.gam_cur.data(), uk, ws.gam_best.data());
    } else {
        // --- Catch up this grid point's cached rho powers (the only
        // exponent-dependent per-sample quantity) on samples added since
        // the last flush. A sticky failure marks the exponent degenerate.
        if (!gp.rho_bad && gp.rho_count < count) {
            ws.ensure_size(gp.rho, count);
            for (std::size_t i = gp.rho_count; i < count; ++i) {
                const double r = std::pow(gp.eta, samples[i].rssi);
                if (!(r > 0.0) || !std::isfinite(r)) {
                    gp.rho_bad = true;
                    break;
                }
                gp.rho[i] = r;
                gp.rho_scale = std::max(gp.rho_scale, r);
                gp.rho_count = i + 1;
            }
        }
        if (gp.rho_bad) return false;

        // --- Linear elliptical seed (paper Eq. 3) on all samples with a
        // single Gamma; rho is exponential in RSS, so dB noise becomes
        // multiplicative. Weighting rows by 1/rho_i minimizes relative
        // error — the first-order equivalent of fitting in the dB domain,
        // in the same linear form.
        //
        // The normal equations are folded incrementally: raw row products
        // accumulate append-only per grid point, and the conditioning
        // scales (a running per-column max) are divided out of the m x m
        // aggregate at solve time. Plain LS (ablation) keeps the paper's
        // raw Eq. 3 rows, uniformly scaled by 1/rho_scale — which factors
        // out of the sums, so the same raw folds serve both modes.
        const std::size_t m = lateral_ok ? 4 : 3;
        const double* rho = gp.rho.data();
        if (gp.ls_count == 0 || gp.ls_lateral != lateral_ok) {
            std::fill_n(gp.ls_ata, 16, 0.0);
            std::fill_n(gp.ls_atb, 4, 0.0);
            std::fill_n(gp.ls_max, 4, 0.0);
            gp.ls_count = 0;
            gp.ls_lateral = lateral_ok;
        }
        for (std::size_t i = gp.ls_count; i < count; ++i) {
            const auto& s = samples[i];
            const double u = cfg_.use_wls ? 1.0 / rho[i] : 1.0;
            double row[4];
            if (lateral_ok) {
                row[0] = (s.p * s.p + s.q * s.q) * u;
                row[1] = s.p * u;
                row[2] = s.q * u;
                row[3] = u;
            } else {
                row[0] = s.p * s.p * u;
                row[1] = s.p * u;
                row[2] = u;
            }
            const double t = cfg_.use_wls ? 1.0 : rho[i];
            for (std::size_t j = 0; j < m; ++j) {
                gp.ls_max[j] = std::max(gp.ls_max[j], std::abs(row[j]));
                gp.ls_atb[j] += row[j] * t;
                for (std::size_t jk = j; jk < m; ++jk)
                    gp.ls_ata[j * 4 + jk] += row[j] * row[jk];
            }
        }
        gp.ls_count = count;

        // x_ij = raw_ij * f with f the uniform mode factor; dividing the
        // aggregates by f-adjusted column scales reproduces the scaled
        // normal equations of locble::least_squares.
        const double f = cfg_.use_wls ? 1.0 : 1.0 / gp.rho_scale;
        const double f2 = f * f;
        double scale[4];
        for (std::size_t j = 0; j < m; ++j) {
            scale[j] = gp.ls_max[j] * f;
            if (scale[j] < 1e-300) scale[j] = 1.0;
        }
        for (std::size_t j = 0; j < m; ++j) {
            ws.atb[j] = f2 * gp.ls_atb[j] / scale[j];
            for (std::size_t jk = j; jk < m; ++jk)
                ws.ata[j * m + jk] = f2 * gp.ls_ata[j * 4 + jk] / (scale[j] * scale[jk]);
        }
        for (std::size_t j = 0; j < m; ++j)
            for (std::size_t jk = 0; jk < j; ++jk) ws.ata[j * m + jk] = ws.ata[jk * m + j];

        bool linear_seed_ok =
            count >= m && locble::solve_linear_flat(ws.ata, ws.atb, ws.beta, m);
        if (linear_seed_ok)
            for (std::size_t j = 0; j < m; ++j) ws.beta[j] /= scale[j];
        if (linear_seed_ok && !(ws.beta[0] > 0.0))
            linear_seed_ok = false;  // eps = 1/A > 0

        // The linear seed when it exists, plus multi-start Gauss-Newton
        // from the level-implied range when it does not (weak quadratic
        // excitation makes the linear system lose the sign of A) or when
        // its refinement ran away.
        double gamma_seed = 0.5 * (gamma_min + gamma_max);
        if (linear_seed_ok) {
            const double a = ws.beta[0];
            const double eps = 1.0 / a;
            gamma_seed =
                std::clamp(5.0 * exponent * std::log10(eps), gamma_min, gamma_max);
            if (lateral_ok) {
                consider({ws.beta[1] / (2.0 * a), ws.beta[2] / (2.0 * a)}, gamma_seed);
            } else {
                const double x0 = ws.beta[1] / (2.0 * a);
                const double g = ws.beta[2];
                const double h2 = g * eps - x0 * x0;
                consider({x0, std::sqrt(std::max(h2, 0.0))}, gamma_seed);
            }
        }
        if (best_rms >= 1e300) {
            used_multistart = true;
            const double d0 = std::clamp(
                std::pow(10.0, (gamma_seed - mean_rssi) / (10.0 * exponent)), 0.5,
                cfg_.max_range_m);
            constexpr int kBearings = 8;
            for (int b = 0; b < kBearings; ++b) {
                const double angle = 2.0 * std::numbers::pi * b / kBearings;
                consider(locble::unit_from_angle(angle) * d0, gamma_seed);
            }
        }
        if (best_rms >= 1e300) return false;
    }

    slot.exponent = exponent;
    slot.raw_loc = best_loc;
    slot.loc = best_loc;
    slot.ambiguous = !lateral_ok;
    slot.multistart = used_multistart;
    if (slot.ambiguous) slot.loc.y = std::abs(slot.loc.y);

    // The winning consider() already evaluated the residuals at this exact
    // (loc, gammas); recompute only when the ambiguity convention actually
    // moved the location.
    const ResidualStats stats =
        slot.loc.y == best_loc.y
            ? best_stats
            : residual_stats_kernel(samples, count, slot.loc, exponent,
                                    ws.gam_best.data(), k, ws.resid.data());
    slot.score = stats.rms_db;
    slot.residual_db = stats.rms_db;
    slot.confidence = stats.confidence;
    return true;
}

bool LocationSolver::solve_impl(const FusedSample* samples, std::size_t count,
                                const SolveHints& hints, SolveDiagnostics* diag,
                                SolverWorkspace& ws, LocationFit& out,
                                bool incremental) const {
    LOCBLE_SPAN("solver.solve");
    LOCBLE_COUNT("solver.solve_calls", 1);
    if (diag) *diag = SolveDiagnostics{};
    if (!incremental || count < ws.agg_count) ws.invalidate();
    const std::uint64_t grows_before = ws.grow_events_;
    if (count < cfg_.min_samples) {
        LOCBLE_COUNT("solver.too_few_samples", 1);
        return false;
    }

    // Fold samples added since the previous solve into the running
    // aggregates (same left-to-right folds a cold start performs, so the
    // values are bit-identical either way).
    if (ws.agg_count == 0 && count > 0) ws.q_min = ws.q_max = samples[0].q;
    if (ws.agg_count < count)
        LOCBLE_COUNT("solver.samples_folded", count - ws.agg_count);
    for (std::size_t i = ws.agg_count; i < count; ++i) {
        const auto& s = samples[i];
        ws.seg_k = std::max(ws.seg_k, s.segment + 1);
        ws.q_min = std::min(ws.q_min, s.q);
        ws.q_max = std::max(ws.q_max, s.q);
        ws.rssi_sum += s.rssi;
    }
    ws.agg_count = count;

    // Is there usable lateral (q) excitation, or is the walk effectively 1-D?
    const bool lateral_ok = (ws.q_max - ws.q_min) >= cfg_.min_lateral_spread;
    const int k = ws.seg_k;
    const double mean_rssi = ws.rssi_sum / static_cast<double>(count);

    double n_min = cfg_.exponent_min;
    double n_max = cfg_.exponent_max;
    if (hints.exponent_band) {
        n_min = std::max(n_min, hints.exponent_band->first);
        n_max = std::min(n_max, hints.exponent_band->second);
    }
    double gamma_min = cfg_.gamma_min_dbm;
    double gamma_max = cfg_.gamma_max_dbm;
    if (hints.gamma_band_dbm) {
        gamma_min = std::max(gamma_min, hints.gamma_band_dbm->first);
        gamma_max = std::min(gamma_max, hints.gamma_band_dbm->second);
    }

    // (Re)build the exponent grid when the hint-narrowed band changed; the
    // per-point incremental state (rho caches, warm fits) survives as long
    // as the grid does.
    if (!ws.grid_valid || ws.grid_n_min != n_min || ws.grid_n_max != n_max ||
        ws.grid_step != cfg_.exponent_step) {
        std::size_t points = 0;
        for (double n = n_min; n <= n_max + 1e-9; n += cfg_.exponent_step) ++points;
        ws.ensure_size(ws.grid, points);
        std::size_t idx = 0;
        for (double n = n_min; n <= n_max + 1e-9; n += cfg_.exponent_step) {
            auto& gp = ws.grid[idx++];
            gp.n = n;
            gp.eta = std::pow(10.0, -1.0 / (5.0 * n));
            gp.rho_scale = 0.0;
            gp.rho_count = 0;
            gp.rho_bad = false;
            gp.ls_count = 0;
            gp.has_fit = false;
        }
        ws.grid_valid = true;
        ws.grid_n_min = n_min;
        ws.grid_n_max = n_max;
        ws.grid_step = cfg_.exponent_step;
        LOCBLE_COUNT("solver.grid_rebuilds", 1);
    }
    const std::size_t grid_size = ws.grid.size();

    // Size the flat scratch once per solve (no-ops after warm-up).
    const std::size_t dim = 2 + static_cast<std::size_t>(k);
    ws.ensure_size(ws.jtj, dim * dim);
    ws.ensure_size(ws.jtr, dim);
    ws.ensure_size(ws.delta, dim);
    ws.ensure_size(ws.gam_cur, static_cast<std::size_t>(k));
    ws.ensure_size(ws.gam_best, static_cast<std::size_t>(k));
    ws.ensure_size(ws.gam_sum, static_cast<std::size_t>(k));
    ws.ensure_size(ws.gam_cnt, static_cast<std::size_t>(k));
    ws.ensure_size(ws.best_gammas, static_cast<std::size_t>(k));
    ws.ensure_size(ws.resid, count);
    ws.ensure_size(ws.evaluated, grid_size);
    std::fill(ws.evaluated.begin(), ws.evaluated.end(), std::uint8_t{0});
    ws.candidates.clear();
    if (ws.candidates.capacity() < grid_size) {
        ++ws.grow_events_;
        ws.candidates.reserve(grid_size);
    }

    const bool coarse = cfg_.search_mode == SearchMode::coarse_to_fine;
    int grid_points = 0, failures = 0, multistarts = 0, warm_starts = 0;
    double best_score = 1e300;
    int best_idx = -1;

    const auto eval_point = [&](std::size_t gi) {
        if (ws.evaluated[gi]) return;
        ws.evaluated[gi] = 1;
        ++grid_points;
        auto& gp = ws.grid[gi];
        SolverWorkspace::CandidateSlot slot;
        bool ok = false;
        if (coarse && incremental && gp.has_fit) {
            ++warm_starts;
            LOCBLE_COUNT("solver.warm_starts", 1);
            ok = evaluate_grid_point(ws, gp, samples, count, lateral_ok, gamma_min,
                                     gamma_max, k, mean_rssi, /*warm=*/true, slot);
            if (!ok) LOCBLE_COUNT("solver.warm_fallbacks", 1);
        }
        if (!ok)
            ok = evaluate_grid_point(ws, gp, samples, count, lateral_ok, gamma_min,
                                     gamma_max, k, mean_rssi, /*warm=*/false, slot);
        if (coarse) {
            // Remember this flush's fit as the next flush's GN seed.
            gp.has_fit = ok;
            if (ok) {
                gp.warm_loc = slot.raw_loc;
                ws.ensure_size(gp.warm_gammas, static_cast<std::size_t>(k));
                std::copy_n(ws.gam_best.data(), static_cast<std::size_t>(k),
                            gp.warm_gammas.data());
            }
        }
        if (!ok) {
            ++failures;
            return;
        }
        if (slot.multistart) ++multistarts;
        slot.grid_idx = static_cast<int>(gi);
        ws.candidates.push_back(slot);
        if (slot.score < best_score) {
            best_score = slot.score;
            best_idx = static_cast<int>(ws.candidates.size()) - 1;
            std::copy_n(ws.gam_best.data(), static_cast<std::size_t>(k),
                        ws.best_gammas.data());
        }
    };

    if (!coarse) {
        for (std::size_t gi = 0; gi < grid_size; ++gi) eval_point(gi);
    } else {
        // Coarse pass at 2x the grid step (endpoints always included)...
        for (std::size_t gi = 0; gi < grid_size; gi += 2) eval_point(gi);
        if (grid_size > 0) eval_point(grid_size - 1);
        // ...then hill-descend on the fine grid around the running argmin
        // until both neighbours have been evaluated and neither wins.
        int prev_best = -2;
        while (best_idx >= 0 && prev_best != best_idx) {
            prev_best = best_idx;
            const int bg = ws.candidates[static_cast<std::size_t>(best_idx)].grid_idx;
            for (const int d : {-1, 1}) {
                const int j = bg + d;
                if (j >= 0 && j < static_cast<int>(grid_size) &&
                    !ws.evaluated[static_cast<std::size_t>(j)]) {
                    LOCBLE_COUNT("solver.refine_evals", 1);
                    eval_point(static_cast<std::size_t>(j));
                }
            }
        }
    }

    LOCBLE_COUNT("solver.exponent_candidates", grid_points);
    LOCBLE_COUNT("solver.candidate_failures", failures);
    LOCBLE_COUNT("solver.multistart_runs", multistarts);
    if (ws.grow_events_ != grows_before)
        LOCBLE_COUNT("solver.workspace_grows", ws.grow_events_ - grows_before);
    if (diag) {
        diag->exponent_candidates = grid_points;
        diag->candidate_failures = failures;
        diag->multistart_runs = multistarts;
        diag->warm_starts = warm_starts;
        diag->converged = best_idx >= 0;
    }
    if (best_idx < 0) {
        LOCBLE_COUNT("solver.convergence_failures", 1);
        return false;
    }
    const auto& best = ws.candidates[static_cast<std::size_t>(best_idx)];
    LOCBLE_HISTOGRAM("solver.residual_db", best.residual_db, 0.5, 1.0, 2.0, 3.0, 4.0,
                     6.0, 8.0, 12.0);

    out.location = best.loc;
    out.exponent = best.exponent;
    out.segment_gammas.resize(static_cast<std::size_t>(k));
    std::copy_n(ws.best_gammas.data(), static_cast<std::size_t>(k),
                out.segment_gammas.data());
    out.gamma_dbm = out.segment_gammas.back();
    out.residual_db = best.residual_db;
    out.confidence = best.confidence;
    out.ambiguous = best.ambiguous;

    // The residual is nearly flat across neighbouring exponents; averaging
    // the near-optimal candidates (within 15% of the best residual) damps
    // the jitter a hard argmin would inherit from noise.
    if (!cfg_.use_model_averaging) return true;

    locble::Vec2 loc_acc{0.0, 0.0};
    double n_acc = 0.0, weight_acc = 0.0;
    for (const auto& c : ws.candidates) {
        if (c.score > best.score * 1.15 + 1e-9) continue;
        if (c.ambiguous != best.ambiguous) continue;
        const double w = 1.0 / std::max(c.score, 1e-6);
        loc_acc += c.loc * w;
        n_acc += c.exponent * w;
        weight_acc += w;
    }
    if (weight_acc > 0.0) {
        out.location = loc_acc / weight_acc;
        out.exponent = n_acc / weight_acc;
        const ResidualStats stats =
            residual_stats_kernel(samples, count, out.location, out.exponent,
                                  ws.best_gammas.data(), k, ws.resid.data());
        out.residual_db = stats.rms_db;
        out.confidence = stats.confidence;
    }
    return true;
}

std::optional<LocationFit> LocationSolver::solve(const std::vector<FusedSample>& samples,
                                                 const SolveHints& hints,
                                                 SolveDiagnostics* diag) const {
    SolverWorkspace ws;
    LocationFit out;
    if (!solve_impl(samples.data(), samples.size(), hints, diag, ws, out,
                    /*incremental=*/false))
        return std::nullopt;
    return out;
}

bool LocationSolver::solve(const std::vector<FusedSample>& samples,
                           const SolveHints& hints, SolveDiagnostics* diag,
                           SolverWorkspace& ws, LocationFit& out) const {
    return solve_impl(samples.data(), samples.size(), hints, diag, ws, out,
                      /*incremental=*/false);
}

std::optional<LocationFit> LocationSolver::resolve_l_shape(
    const LocationFit& leg1, const LocationFit& leg2, const locble::Vec2& leg2_origin,
    double leg2_heading) {
    // Each ambiguous leg fit yields two mirror candidates in its own frame.
    const auto candidates_of = [](const LocationFit& fit) {
        std::vector<locble::Vec2> out{fit.location};
        if (fit.ambiguous) out.push_back({fit.location.x, -fit.location.y});
        return out;
    };
    // Leg 1's frame *is* the observer frame. Leg 2 candidates must be
    // rotated/translated out of the second leg's local frame.
    std::vector<locble::Vec2> c1 = candidates_of(leg1);
    std::vector<locble::Vec2> c2;
    for (const auto& c : candidates_of(leg2))
        c2.push_back(leg2_origin + c.rotated(leg2_heading));

    double best_gap = 1e300;
    locble::Vec2 best_point;
    for (const auto& a : c1) {
        for (const auto& b : c2) {
            const double gap = locble::Vec2::distance(a, b);
            if (gap < best_gap) {
                best_gap = gap;
                best_point = (a + b) * 0.5;
            }
        }
    }
    if (best_gap >= 1e300) return std::nullopt;

    LocationFit out;
    out.location = best_point;
    // Blend the per-leg parameter estimates, weighting by confidence.
    const double w1 = std::max(leg1.confidence, 1e-6);
    const double w2 = std::max(leg2.confidence, 1e-6);
    out.exponent = (leg1.exponent * w1 + leg2.exponent * w2) / (w1 + w2);
    out.gamma_dbm = (leg1.gamma_dbm * w1 + leg2.gamma_dbm * w2) / (w1 + w2);
    out.segment_gammas = {out.gamma_dbm};
    out.residual_db = 0.5 * (leg1.residual_db + leg2.residual_db);
    out.confidence = std::min(leg1.confidence, leg2.confidence);
    out.ambiguous = false;
    return out;
}

}  // namespace locble::core
