#include "locble/core/dtw.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "locble/obs/obs.hpp"

namespace locble::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

inline double sqdist(double a, double b) { return (a - b) * (a - b); }

}  // namespace

std::vector<std::vector<double>> dtw_cost_matrix(std::span<const double> a,
                                                 std::span<const double> b,
                                                 std::size_t window) {
    if (a.empty() || b.empty())
        throw std::invalid_argument("dtw: empty sequence");
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    // A band narrower than |n - m| can never reach the corner.
    const std::size_t min_band = n > m ? n - m : m - n;
    const std::size_t w = window == 0 ? std::max(n, m) : std::max(window, min_band);

    std::vector<std::vector<double>> cost(n, std::vector<double>(m, kInf));
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t j_lo = i > w ? i - w : 0;
        const std::size_t j_hi = std::min(i + w, m - 1);
        for (std::size_t j = j_lo; j <= j_hi; ++j) {
            const double d = sqdist(a[i], b[j]);
            if (i == 0 && j == 0) {
                cost[i][j] = d;
                continue;
            }
            double best = kInf;
            if (i > 0) best = std::min(best, cost[i - 1][j]);
            if (j > 0) best = std::min(best, cost[i][j - 1]);
            if (i > 0 && j > 0) best = std::min(best, cost[i - 1][j - 1]);
            cost[i][j] = d + best;
        }
    }
    return cost;
}

double dtw_distance(std::span<const double> a, std::span<const double> b,
                    std::size_t window) {
    const auto cost = dtw_cost_matrix(a, b, window);
    return cost.back().back();
}

Envelope warping_envelope(std::span<const double> s, std::size_t window) {
    Envelope env;
    env.lower.resize(s.size());
    env.upper.resize(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        const std::size_t lo = i > window ? i - window : 0;
        const std::size_t hi = std::min(i + window, s.size() - 1);
        double mn = s[lo], mx = s[lo];
        for (std::size_t j = lo + 1; j <= hi; ++j) {
            mn = std::min(mn, s[j]);
            mx = std::max(mx, s[j]);
        }
        env.lower[i] = mn;
        env.upper[i] = mx;
    }
    return env;
}

double lb_keogh(std::span<const double> target, std::span<const double> candidate,
                std::size_t window) {
    if (target.size() != candidate.size())
        throw std::invalid_argument("lb_keogh: length mismatch");
    if (target.empty()) throw std::invalid_argument("lb_keogh: empty sequence");
    const Envelope env = warping_envelope(target, window);
    double lb = 0.0;
    for (std::size_t i = 0; i < candidate.size(); ++i) {
        if (candidate[i] > env.upper[i])
            lb += sqdist(candidate[i], env.upper[i]);
        else if (candidate[i] < env.lower[i])
            lb += sqdist(candidate[i], env.lower[i]);
    }
    return lb;
}

SegmentedDtwMatcher::MatchResult SegmentedDtwMatcher::match(
    std::span<const double> target, std::span<const double> candidate) const {
    LOCBLE_SPAN("dtw.match");
    MatchResult out;
    const std::size_t n = std::min(target.size(), candidate.size());
    const std::size_t seg = cfg_.segment_length;
    if (seg == 0 || n < seg) return out;

    for (std::size_t start = 0; start + seg <= n; start += seg) {
        ++out.segments_total;
        const auto t = target.subspan(start, seg);
        const auto c = candidate.subspan(start, seg);
        // Cheap gate first: if even the lower bound exceeds the threshold,
        // the true DTW distance must as well.
        if (lb_keogh(t, c, cfg_.warp_window) > cfg_.threshold) {
            ++out.lb_rejections;
            continue;
        }
        if (dtw_distance(t, c, cfg_.warp_window) <= cfg_.threshold)
            ++out.segments_matched;
    }
    out.matched = out.segments_total > 0 &&
                  2 * out.segments_matched > out.segments_total;
    LOCBLE_COUNT("dtw.match_calls", 1);
    LOCBLE_COUNT("dtw.segments", out.segments_total);
    LOCBLE_COUNT("dtw.lb_pruned", out.lb_rejections);
    LOCBLE_COUNT("dtw.full_evals", out.segments_total - out.lb_rejections);
    if (out.matched) LOCBLE_COUNT("dtw.matches", 1);
    return out;
}

}  // namespace locble::core
