#include "locble/core/navigation.hpp"

namespace locble::core {

Guidance Navigator::guide(const locble::Vec2& current_position,
                          double current_heading) const {
    Guidance g;
    const locble::Vec2 delta = target_ - current_position;
    g.distance_m = delta.norm();
    g.arrived = g.distance_m <= arrive_radius_;
    g.bearing_rad = g.arrived ? 0.0 : locble::angle_diff(delta.angle(), current_heading);
    return g;
}

}  // namespace locble::core
