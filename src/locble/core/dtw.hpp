#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace locble::core {

/// Dynamic time warping with a Sakoe-Chiba band.
///
/// Returns the cumulative alignment cost between `a` and `b` under squared
/// Euclidean point distance, constrained to |i - j| <= window (window == 0
/// means unconstrained). Throws std::invalid_argument on empty input.
double dtw_distance(std::span<const double> a, std::span<const double> b,
                    std::size_t window = 0);

/// Full DTW cost matrix (for Fig. 9's visualization); entry [i][j] is the
/// cumulative cost of aligning a[0..i] with b[0..j].
std::vector<std::vector<double>> dtw_cost_matrix(std::span<const double> a,
                                                 std::span<const double> b,
                                                 std::size_t window = 0);

/// LB_Keogh lower bound on the DTW distance: the squared-distance mass of
/// `candidate` outside the warping envelope of `target`. Cheap (O(n)) and
/// always <= the true DTW distance, so it can discard non-matching segments
/// before running DTW (Sec. 6.1's "lower bounding technique", ~100x faster
/// than full DTW). Sequences must be the same length.
double lb_keogh(std::span<const double> target, std::span<const double> candidate,
                std::size_t window);

/// Warping envelope of `s`: per-index min/max over [i-window, i+window].
struct Envelope {
    std::vector<double> lower;
    std::vector<double> upper;
};
Envelope warping_envelope(std::span<const double> s, std::size_t window);

/// LocBLE's segmented DTW matcher (Sec. 6.1 / Algo. 2 lines 4-11):
/// sequences are preprocessed (low-pass + differentiation happen upstream),
/// split into fixed-length segments, each segment gated by LB_Keogh and
/// then accepted iff its banded DTW distance passes the threshold; the
/// candidate matches when more than half of its segments match.
class SegmentedDtwMatcher {
public:
    struct Config {
        std::size_t segment_length{10};  ///< paper: 10-point segments
        std::size_t warp_window{3};
        double threshold{6.1};  ///< shared LB / DTW threshold (Sec. 6.1)
    };

    SegmentedDtwMatcher() : SegmentedDtwMatcher(Config{}) {}
    explicit SegmentedDtwMatcher(const Config& cfg) : cfg_(cfg) {}

    struct MatchResult {
        bool matched{false};
        std::size_t segments_total{0};
        std::size_t segments_matched{0};
        std::size_t lb_rejections{0};  ///< segments LB_Keogh discarded early
    };

    /// Compare a candidate sequence against the target; both must be
    /// sampled on the target's timestamps already (interpolate upstream).
    MatchResult match(std::span<const double> target,
                      std::span<const double> candidate) const;

    const Config& config() const { return cfg_; }

private:
    Config cfg_;
};

}  // namespace locble::core
