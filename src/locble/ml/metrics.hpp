#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace locble::ml {

/// Multiclass classification quality report.
struct ClassificationReport {
    std::vector<std::vector<std::size_t>> confusion;  ///< [true][predicted]
    double accuracy{0.0};
    std::vector<double> precision;  ///< per class
    std::vector<double> recall;     ///< per class
    std::vector<double> f1;         ///< per class
    double macro_precision{0.0};
    double macro_recall{0.0};
    double macro_f1{0.0};

    std::string str(const std::vector<std::string>& class_names = {}) const;
};

/// Build a report from aligned truth/prediction vectors with labels in
/// 0..k-1. Throws std::invalid_argument on size mismatch or empty input.
ClassificationReport evaluate_classification(const std::vector<int>& truth,
                                             const std::vector<int>& predicted);

}  // namespace locble::ml
