#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "locble/common/rng.hpp"
#include "locble/ml/dataset.hpp"

namespace locble::ml {

/// CART decision-tree classifier (Gini impurity, axis-aligned splits).
///
/// One of the classifiers LocBLE's EnvAware ensemble compared against the
/// linear SVM (Sec. 4.1); kept as a baseline for `bench_envaware_classifier`.
class DecisionTree {
public:
    struct Config {
        int max_depth{12};
        std::size_t min_samples_split{4};
        std::size_t min_samples_leaf{2};
        /// Number of features examined per split; 0 = all (plain CART).
        /// Random forests set this to sqrt(d).
        std::size_t max_features{0};
        std::uint64_t seed{11};  ///< feature subsampling seed
    };

    DecisionTree() : DecisionTree(Config{}) {}
    explicit DecisionTree(const Config& cfg) : cfg_(cfg) {}

    void fit(const Dataset& data);
    /// Fit on a subset of rows (used by the random forest's bootstrap).
    void fit(const Dataset& data, const std::vector<std::size_t>& rows);

    int predict(const std::vector<double>& features) const;
    std::vector<int> predict(const Dataset& data) const;

    bool fitted() const { return !nodes_.empty(); }
    std::size_t node_count() const { return nodes_.size(); }

private:
    struct Node {
        int feature{-1};       ///< -1 marks a leaf
        double threshold{0.0}; ///< go left when x[feature] <= threshold
        int left{-1};
        int right{-1};
        int label{0};          ///< majority class at this node
    };

    int build(const Dataset& data, std::vector<std::size_t>& rows, int depth,
              locble::Rng& rng);

    Config cfg_;
    int num_classes_{0};
    std::vector<Node> nodes_;
};

/// Random forest: bagged CART trees with sqrt-feature subsampling and
/// majority voting.
class RandomForest {
public:
    struct Config {
        std::size_t num_trees{25};
        DecisionTree::Config tree{};
        std::uint64_t seed{13};
    };

    RandomForest() : RandomForest(Config{}) {}
    explicit RandomForest(const Config& cfg) : cfg_(cfg) {}

    void fit(const Dataset& data);
    int predict(const std::vector<double>& features) const;
    std::vector<int> predict(const Dataset& data) const;

    bool fitted() const { return !trees_.empty(); }
    std::size_t size() const { return trees_.size(); }

private:
    Config cfg_;
    int num_classes_{0};
    std::vector<DecisionTree> trees_;
};

}  // namespace locble::ml
