#pragma once

#include <vector>

#include "locble/common/rng.hpp"
#include "locble/ml/dataset.hpp"

namespace locble::ml {

/// Linear SVM trained by dual coordinate descent (the liblinear algorithm
/// for L1-loss SVC), extended to multiclass with one-vs-rest voting.
///
/// LocBLE's EnvAware picked "SVM with a linear kernel" over trees/forests
/// for the 3-way LOS/p-LOS/NLOS environment classification (Sec. 4.1); this
/// is that classifier.
class LinearSvm {
public:
    struct Config {
        double c{1.0};          ///< soft-margin penalty
        int max_epochs{200};    ///< dual coordinate descent sweeps
        double tolerance{1e-4}; ///< stop when max projected gradient < tol
        std::uint64_t seed{7};  ///< permutation seed (deterministic training)
    };

    LinearSvm() : LinearSvm(Config{}) {}
    explicit LinearSvm(const Config& cfg) : cfg_(cfg) {}

    /// Fit on `data` (labels 0..k-1). Binary problems train one separator;
    /// multiclass trains k one-vs-rest separators. Throws on an empty or
    /// malformed dataset.
    void fit(const Dataset& data);

    /// Predicted class label.
    int predict(const std::vector<double>& features) const;
    std::vector<int> predict(const Dataset& data) const;

    /// Raw one-vs-rest decision values (one per class; binary problems
    /// report {-d, d}).
    std::vector<double> decision_values(const std::vector<double>& features) const;

    bool fitted() const { return !weights_.empty(); }
    int num_classes() const { return static_cast<int>(weights_.size()); }
    /// Weight vector for class `c`, last element is the bias term.
    const std::vector<double>& weights(int c) const {
        return weights_.at(static_cast<std::size_t>(c));
    }

private:
    /// Train one binary separator for labels in {-1,+1}; returns the weight
    /// vector with the bias appended.
    std::vector<double> train_binary(const std::vector<std::vector<double>>& x,
                                     const std::vector<int>& sign,
                                     locble::Rng& rng) const;

    Config cfg_;
    std::vector<std::vector<double>> weights_;  ///< [class][dim+1]
};

}  // namespace locble::ml
