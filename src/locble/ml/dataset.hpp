#pragma once

#include <cstddef>
#include <vector>

#include "locble/common/rng.hpp"

namespace locble::ml {

/// A labeled dataset: row-major feature matrix plus integer class labels.
struct Dataset {
    std::vector<std::vector<double>> x;
    std::vector<int> y;

    std::size_t size() const { return x.size(); }
    std::size_t dims() const { return x.empty() ? 0 : x.front().size(); }

    void add(std::vector<double> features, int label) {
        x.push_back(std::move(features));
        y.push_back(label);
    }

    /// Number of distinct classes, assuming labels are 0..k-1.
    int num_classes() const;

    /// Validate rectangular shape and matching label count; throws
    /// std::invalid_argument otherwise.
    void validate() const;
};

/// Shuffle-split into train/test with the given test fraction.
/// Deterministic for a given Rng state.
std::pair<Dataset, Dataset> train_test_split(const Dataset& data, double test_fraction,
                                             locble::Rng& rng);

/// Indices for k-fold cross validation (deterministic shuffled folds).
std::vector<std::vector<std::size_t>> kfold_indices(std::size_t n, std::size_t k,
                                                    locble::Rng& rng);

/// Z-score feature standardizer (fit on train, apply everywhere), as used
/// before LocBLE's SVM ("standardized 9 values", Sec. 4.1).
class StandardScaler {
public:
    /// Learn per-dimension mean and standard deviation. Dimensions with ~0
    /// spread standardize to 0. Throws std::invalid_argument when empty.
    void fit(const Dataset& data);

    std::vector<double> transform(const std::vector<double>& features) const;
    Dataset transform(const Dataset& data) const;

    bool fitted() const { return !mean_.empty(); }
    const std::vector<double>& mean() const { return mean_; }
    const std::vector<double>& stddev() const { return std_; }

private:
    std::vector<double> mean_;
    std::vector<double> std_;
};

}  // namespace locble::ml
