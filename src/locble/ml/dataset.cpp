#include "locble/ml/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace locble::ml {

int Dataset::num_classes() const {
    int k = 0;
    for (int label : y) k = std::max(k, label + 1);
    return k;
}

void Dataset::validate() const {
    if (x.size() != y.size())
        throw std::invalid_argument("Dataset: feature/label count mismatch");
    for (const auto& row : x)
        if (row.size() != dims())
            throw std::invalid_argument("Dataset: ragged feature rows");
    for (int label : y)
        if (label < 0) throw std::invalid_argument("Dataset: negative label");
}

std::pair<Dataset, Dataset> train_test_split(const Dataset& data, double test_fraction,
                                             locble::Rng& rng) {
    if (test_fraction < 0.0 || test_fraction > 1.0)
        throw std::invalid_argument("train_test_split: fraction outside [0,1]");
    std::vector<std::size_t> idx(data.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::shuffle(idx.begin(), idx.end(), rng.engine());
    const auto n_test = static_cast<std::size_t>(
        std::llround(test_fraction * static_cast<double>(data.size())));
    Dataset train, test;
    for (std::size_t i = 0; i < idx.size(); ++i) {
        auto& dst = i < n_test ? test : train;
        dst.add(data.x[idx[i]], data.y[idx[i]]);
    }
    return {std::move(train), std::move(test)};
}

std::vector<std::vector<std::size_t>> kfold_indices(std::size_t n, std::size_t k,
                                                    locble::Rng& rng) {
    if (k == 0 || k > n) throw std::invalid_argument("kfold_indices: bad k");
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0);
    std::shuffle(idx.begin(), idx.end(), rng.engine());
    std::vector<std::vector<std::size_t>> folds(k);
    for (std::size_t i = 0; i < n; ++i) folds[i % k].push_back(idx[i]);
    return folds;
}

void StandardScaler::fit(const Dataset& data) {
    if (data.size() == 0) throw std::invalid_argument("StandardScaler: empty dataset");
    const std::size_t d = data.dims();
    mean_.assign(d, 0.0);
    std_.assign(d, 0.0);
    for (const auto& row : data.x)
        for (std::size_t j = 0; j < d; ++j) mean_[j] += row[j];
    for (std::size_t j = 0; j < d; ++j) mean_[j] /= static_cast<double>(data.size());
    for (const auto& row : data.x)
        for (std::size_t j = 0; j < d; ++j)
            std_[j] += (row[j] - mean_[j]) * (row[j] - mean_[j]);
    for (std::size_t j = 0; j < d; ++j)
        std_[j] = std::sqrt(std_[j] / static_cast<double>(data.size()));
}

std::vector<double> StandardScaler::transform(const std::vector<double>& features) const {
    if (features.size() != mean_.size())
        throw std::invalid_argument("StandardScaler: dimension mismatch");
    std::vector<double> out(features.size());
    for (std::size_t j = 0; j < features.size(); ++j) {
        constexpr double kEps = 1e-12;
        out[j] = std_[j] > kEps ? (features[j] - mean_[j]) / std_[j] : 0.0;
    }
    return out;
}

Dataset StandardScaler::transform(const Dataset& data) const {
    Dataset out;
    out.y = data.y;
    out.x.reserve(data.size());
    for (const auto& row : data.x) out.x.push_back(transform(row));
    return out;
}

}  // namespace locble::ml
