#include "locble/ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace locble::ml {

void KnnClassifier::fit(const Dataset& data) {
    data.validate();
    if (data.size() == 0) throw std::invalid_argument("KnnClassifier: empty dataset");
    if (cfg_.k == 0) throw std::invalid_argument("KnnClassifier: k must be > 0");
    train_ = data;
    num_classes_ = data.num_classes();
}

int KnnClassifier::predict(const std::vector<double>& features) const {
    if (!fitted()) throw std::logic_error("KnnClassifier: predict before fit");
    if (features.size() != train_.dims())
        throw std::invalid_argument("KnnClassifier: feature dimension mismatch");

    std::vector<std::pair<double, int>> dist;  // (distance^2, label)
    dist.reserve(train_.size());
    for (std::size_t i = 0; i < train_.size(); ++i) {
        double d2 = 0.0;
        for (std::size_t j = 0; j < features.size(); ++j) {
            const double diff = features[j] - train_.x[i][j];
            d2 += diff * diff;
        }
        dist.emplace_back(d2, train_.y[i]);
    }
    const std::size_t k = std::min(cfg_.k, dist.size());
    std::partial_sort(dist.begin(), dist.begin() + static_cast<long>(k), dist.end());

    std::vector<double> votes(num_classes_, 0.0);
    for (std::size_t i = 0; i < k; ++i) {
        const double w =
            cfg_.distance_weighted ? 1.0 / (std::sqrt(dist[i].first) + 1e-9) : 1.0;
        votes[dist[i].second] += w;
    }
    return static_cast<int>(std::max_element(votes.begin(), votes.end()) -
                            votes.begin());
}

std::vector<int> KnnClassifier::predict(const Dataset& data) const {
    std::vector<int> out;
    out.reserve(data.size());
    for (const auto& row : data.x) out.push_back(predict(row));
    return out;
}

}  // namespace locble::ml
