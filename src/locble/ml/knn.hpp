#pragma once

#include <vector>

#include "locble/ml/dataset.hpp"

namespace locble::ml {

/// k-nearest-neighbours classifier (Euclidean), the third member of the
/// classifier ensemble EnvAware was evaluated against (Sec. 4.1 compares
/// "various classifiers"). Brute force — EnvAware datasets are a few
/// thousand rows at most.
class KnnClassifier {
public:
    struct Config {
        std::size_t k{7};
        /// Weight votes by 1/distance instead of uniformly.
        bool distance_weighted{true};
    };

    KnnClassifier() : KnnClassifier(Config{}) {}
    explicit KnnClassifier(const Config& cfg) : cfg_(cfg) {}

    /// Stores the training data. Throws on empty/malformed input or k of 0.
    void fit(const Dataset& data);

    int predict(const std::vector<double>& features) const;
    std::vector<int> predict(const Dataset& data) const;

    bool fitted() const { return !train_.x.empty(); }
    const Config& config() const { return cfg_; }

private:
    Config cfg_;
    Dataset train_;
    int num_classes_{0};
};

}  // namespace locble::ml
