#include "locble/ml/metrics.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace locble::ml {

ClassificationReport evaluate_classification(const std::vector<int>& truth,
                                             const std::vector<int>& predicted) {
    if (truth.size() != predicted.size())
        throw std::invalid_argument("evaluate_classification: size mismatch");
    if (truth.empty())
        throw std::invalid_argument("evaluate_classification: empty input");
    int k = 0;
    for (std::size_t i = 0; i < truth.size(); ++i)
        k = std::max({k, truth[i] + 1, predicted[i] + 1});

    ClassificationReport r;
    r.confusion.assign(k, std::vector<std::size_t>(k, 0));
    std::size_t correct = 0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        r.confusion[truth[i]][predicted[i]]++;
        if (truth[i] == predicted[i]) ++correct;
    }
    r.accuracy = static_cast<double>(correct) / static_cast<double>(truth.size());

    r.precision.assign(k, 0.0);
    r.recall.assign(k, 0.0);
    r.f1.assign(k, 0.0);
    for (int c = 0; c < k; ++c) {
        std::size_t tp = r.confusion[c][c];
        std::size_t pred_c = 0, true_c = 0;
        for (int o = 0; o < k; ++o) {
            pred_c += r.confusion[o][c];
            true_c += r.confusion[c][o];
        }
        r.precision[c] =
            pred_c ? static_cast<double>(tp) / static_cast<double>(pred_c) : 0.0;
        r.recall[c] =
            true_c ? static_cast<double>(tp) / static_cast<double>(true_c) : 0.0;
        const double denom = r.precision[c] + r.recall[c];
        r.f1[c] = denom > 0.0 ? 2.0 * r.precision[c] * r.recall[c] / denom : 0.0;
        r.macro_precision += r.precision[c];
        r.macro_recall += r.recall[c];
        r.macro_f1 += r.f1[c];
    }
    r.macro_precision /= k;
    r.macro_recall /= k;
    r.macro_f1 /= k;
    return r;
}

std::string ClassificationReport::str(const std::vector<std::string>& class_names) const {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(3);
    const auto k = confusion.size();
    os << "accuracy " << accuracy << ", macro precision " << macro_precision
       << ", macro recall " << macro_recall << ", macro F1 " << macro_f1 << '\n';
    for (std::size_t c = 0; c < k; ++c) {
        const std::string name =
            c < class_names.size() ? class_names[c] : "class " + std::to_string(c);
        os << "  " << name << ": precision " << precision[c] << " recall " << recall[c]
           << " f1 " << f1[c] << '\n';
    }
    return os.str();
}

}  // namespace locble::ml
