#include "locble/ml/svm.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace locble::ml {

namespace {

double dot_aug(const std::vector<double>& w, const std::vector<double>& x) {
    // w has one extra bias slot; x is implicitly augmented with 1.
    double s = w.back();
    for (std::size_t j = 0; j < x.size(); ++j) s += w[j] * x[j];
    return s;
}

}  // namespace

std::vector<double> LinearSvm::train_binary(const std::vector<std::vector<double>>& x,
                                            const std::vector<int>& sign,
                                            locble::Rng& rng) const {
    const std::size_t n = x.size();
    const std::size_t d = x.front().size();
    std::vector<double> w(d + 1, 0.0);  // last slot = bias (augmented feature 1)
    std::vector<double> alpha(n, 0.0);
    std::vector<double> q_ii(n);
    for (std::size_t i = 0; i < n; ++i) {
        double q = 1.0;  // the augmented constant feature
        for (double v : x[i]) q += v * v;
        q_ii[i] = q;
    }

    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);

    for (int epoch = 0; epoch < cfg_.max_epochs; ++epoch) {
        std::shuffle(order.begin(), order.end(), rng.engine());
        double max_violation = 0.0;
        for (std::size_t i : order) {
            const double yi = sign[i];
            const double g = yi * dot_aug(w, x[i]) - 1.0;
            // Projected gradient for the box constraint 0 <= alpha <= C.
            double pg = g;
            if (alpha[i] <= 0.0) pg = std::min(g, 0.0);
            if (alpha[i] >= cfg_.c) pg = std::max(g, 0.0);
            max_violation = std::max(max_violation, std::abs(pg));
            if (pg == 0.0) continue;
            const double old = alpha[i];
            alpha[i] = std::clamp(old - g / q_ii[i], 0.0, cfg_.c);
            const double delta = (alpha[i] - old) * yi;
            for (std::size_t j = 0; j < d; ++j) w[j] += delta * x[i][j];
            w[d] += delta;  // bias via augmented feature
        }
        if (max_violation < cfg_.tolerance) break;
    }
    return w;
}

void LinearSvm::fit(const Dataset& data) {
    data.validate();
    if (data.size() == 0) throw std::invalid_argument("LinearSvm: empty dataset");
    const int k = data.num_classes();
    if (k < 2) throw std::invalid_argument("LinearSvm: need at least 2 classes");

    locble::Rng rng(cfg_.seed);
    weights_.clear();
    if (k == 2) {
        std::vector<int> sign(data.size());
        for (std::size_t i = 0; i < data.size(); ++i) sign[i] = data.y[i] == 1 ? 1 : -1;
        auto w = train_binary(data.x, sign, rng);
        // Store as one-vs-rest pair so decision_values() is uniform.
        std::vector<double> neg(w.size());
        for (std::size_t j = 0; j < w.size(); ++j) neg[j] = -w[j];
        weights_.push_back(std::move(neg));
        weights_.push_back(std::move(w));
        return;
    }
    for (int c = 0; c < k; ++c) {
        std::vector<int> sign(data.size());
        for (std::size_t i = 0; i < data.size(); ++i) sign[i] = data.y[i] == c ? 1 : -1;
        weights_.push_back(train_binary(data.x, sign, rng));
    }
}

std::vector<double> LinearSvm::decision_values(const std::vector<double>& features) const {
    if (!fitted()) throw std::logic_error("LinearSvm: predict before fit");
    std::vector<double> out;
    out.reserve(weights_.size());
    for (const auto& w : weights_) {
        if (features.size() + 1 != w.size())
            throw std::invalid_argument("LinearSvm: feature dimension mismatch");
        out.push_back(dot_aug(w, features));
    }
    return out;
}

int LinearSvm::predict(const std::vector<double>& features) const {
    const auto d = decision_values(features);
    return static_cast<int>(std::max_element(d.begin(), d.end()) - d.begin());
}

std::vector<int> LinearSvm::predict(const Dataset& data) const {
    std::vector<int> out;
    out.reserve(data.size());
    for (const auto& row : data.x) out.push_back(predict(row));
    return out;
}

}  // namespace locble::ml
