#include "locble/ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace locble::ml {

namespace {

double gini(const std::vector<std::size_t>& counts, std::size_t total) {
    if (total == 0) return 0.0;
    double g = 1.0;
    for (std::size_t c : counts) {
        const double p = static_cast<double>(c) / static_cast<double>(total);
        g -= p * p;
    }
    return g;
}

int majority(const std::vector<std::size_t>& counts) {
    return static_cast<int>(std::max_element(counts.begin(), counts.end()) -
                            counts.begin());
}

}  // namespace

int DecisionTree::build(const Dataset& data, std::vector<std::size_t>& rows, int depth,
                        locble::Rng& rng) {
    std::vector<std::size_t> counts(num_classes_, 0);
    for (std::size_t r : rows) counts[data.y[r]]++;
    const int node_label = majority(counts);
    const double node_gini = gini(counts, rows.size());

    Node node;
    node.label = node_label;
    const int node_index = static_cast<int>(nodes_.size());
    nodes_.push_back(node);

    const bool pure = node_gini <= 1e-12;
    if (pure || depth >= cfg_.max_depth || rows.size() < cfg_.min_samples_split)
        return node_index;

    // Candidate feature set: all features, or a random subset for forests.
    std::vector<std::size_t> features(data.dims());
    std::iota(features.begin(), features.end(), 0);
    if (cfg_.max_features > 0 && cfg_.max_features < features.size()) {
        std::shuffle(features.begin(), features.end(), rng.engine());
        features.resize(cfg_.max_features);
    }

    double best_impurity = node_gini;
    int best_feature = -1;
    double best_threshold = 0.0;

    std::vector<std::pair<double, int>> sorted;
    sorted.reserve(rows.size());
    for (std::size_t f : features) {
        sorted.clear();
        for (std::size_t r : rows) sorted.emplace_back(data.x[r][f], data.y[r]);
        std::sort(sorted.begin(), sorted.end());

        std::vector<std::size_t> left(num_classes_, 0);
        std::vector<std::size_t> right = counts;
        for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
            left[sorted[i].second]++;
            right[sorted[i].second]--;
            if (sorted[i].first == sorted[i + 1].first) continue;
            const std::size_t nl = i + 1;
            const std::size_t nr = sorted.size() - nl;
            if (nl < cfg_.min_samples_leaf || nr < cfg_.min_samples_leaf) continue;
            const double impurity =
                (static_cast<double>(nl) * gini(left, nl) +
                 static_cast<double>(nr) * gini(right, nr)) /
                static_cast<double>(sorted.size());
            if (impurity + 1e-12 < best_impurity) {
                best_impurity = impurity;
                best_feature = static_cast<int>(f);
                best_threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
            }
        }
    }

    if (best_feature < 0) return node_index;

    std::vector<std::size_t> left_rows, right_rows;
    for (std::size_t r : rows) {
        if (data.x[r][best_feature] <= best_threshold)
            left_rows.push_back(r);
        else
            right_rows.push_back(r);
    }
    if (left_rows.empty() || right_rows.empty()) return node_index;

    nodes_[node_index].feature = best_feature;
    nodes_[node_index].threshold = best_threshold;
    nodes_[node_index].left = build(data, left_rows, depth + 1, rng);
    nodes_[node_index].right = build(data, right_rows, depth + 1, rng);
    return node_index;
}

void DecisionTree::fit(const Dataset& data) {
    std::vector<std::size_t> rows(data.size());
    std::iota(rows.begin(), rows.end(), 0);
    fit(data, rows);
}

void DecisionTree::fit(const Dataset& data, const std::vector<std::size_t>& rows) {
    data.validate();
    if (rows.empty()) throw std::invalid_argument("DecisionTree: empty training set");
    num_classes_ = data.num_classes();
    nodes_.clear();
    locble::Rng rng(cfg_.seed);
    std::vector<std::size_t> mutable_rows = rows;
    build(data, mutable_rows, 0, rng);
}

int DecisionTree::predict(const std::vector<double>& features) const {
    if (!fitted()) throw std::logic_error("DecisionTree: predict before fit");
    int i = 0;
    while (nodes_[i].feature >= 0) {
        const auto f = static_cast<std::size_t>(nodes_[i].feature);
        if (f >= features.size())
            throw std::invalid_argument("DecisionTree: feature dimension mismatch");
        i = features[f] <= nodes_[i].threshold ? nodes_[i].left : nodes_[i].right;
    }
    return nodes_[i].label;
}

std::vector<int> DecisionTree::predict(const Dataset& data) const {
    std::vector<int> out;
    out.reserve(data.size());
    for (const auto& row : data.x) out.push_back(predict(row));
    return out;
}

void RandomForest::fit(const Dataset& data) {
    data.validate();
    if (data.size() == 0) throw std::invalid_argument("RandomForest: empty dataset");
    num_classes_ = data.num_classes();
    trees_.clear();
    locble::Rng rng(cfg_.seed);

    DecisionTree::Config tree_cfg = cfg_.tree;
    if (tree_cfg.max_features == 0) {
        tree_cfg.max_features = static_cast<std::size_t>(
            std::max(1.0, std::floor(std::sqrt(static_cast<double>(data.dims())))));
    }

    for (std::size_t t = 0; t < cfg_.num_trees; ++t) {
        std::vector<std::size_t> bootstrap(data.size());
        for (auto& r : bootstrap)
            r = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(data.size()) - 1));
        tree_cfg.seed = rng.engine()();
        DecisionTree tree(tree_cfg);
        tree.fit(data, bootstrap);
        trees_.push_back(std::move(tree));
    }
}

int RandomForest::predict(const std::vector<double>& features) const {
    if (!fitted()) throw std::logic_error("RandomForest: predict before fit");
    std::vector<std::size_t> votes(num_classes_, 0);
    for (const auto& tree : trees_) votes[tree.predict(features)]++;
    return static_cast<int>(std::max_element(votes.begin(), votes.end()) - votes.begin());
}

std::vector<int> RandomForest::predict(const Dataset& data) const {
    std::vector<int> out;
    out.reserve(data.size());
    for (const auto& row : data.x) out.push_back(predict(row));
    return out;
}

}  // namespace locble::ml
