#pragma once

#include <string>
#include <vector>

#include "locble/channel/propagation.hpp"
#include "locble/common/rng.hpp"

namespace locble::sim {

/// Expected-RSSI coverage map of one beacon over a site — a planning/
/// debugging aid: where is the beacon hearable, and where does blockage
/// carve shadows? Each cell holds the *mean* RSSI (fast fading averaged
/// out) a receiver standing there would see.
struct RssiHeatmap {
    double cell_m{0.5};
    std::size_t cols{0};
    std::size_t rows{0};
    std::vector<double> rssi_dbm;  ///< row-major, rows * cols

    double at(std::size_t col, std::size_t row) const {
        return rssi_dbm.at(row * cols + col);
    }
    /// Cell center in site coordinates.
    locble::Vec2 center(std::size_t col, std::size_t row) const {
        return {(static_cast<double>(col) + 0.5) * cell_m,
                (static_cast<double>(row) + 0.5) * cell_m};
    }
    /// Fraction of cells above an RSSI floor (coverage at a sensitivity).
    double coverage(double floor_dbm) const;

    /// ASCII rendering (one char per cell, stronger = denser), for quick
    /// terminal inspection.
    std::string ascii() const;
};

/// Compute the map: per cell, the deterministic path-loss + blockage level
/// plus the site's shadowing field (fast fading averages to ~0 dB).
/// `gamma_dbm` is the beacon's calibrated 1 m power. Throws
/// std::invalid_argument for a non-positive cell size.
RssiHeatmap rssi_heatmap(const channel::SiteModel& site, const locble::Vec2& beacon,
                         double gamma_dbm, double cell_m, locble::Rng& rng);

}  // namespace locble::sim
