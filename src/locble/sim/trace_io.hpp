#pragma once

#include <string>

#include "locble/sim/capture.hpp"

namespace locble::sim {

/// Record/replay of measurement walks as CSV bundles.
///
/// A capture saved to `<prefix>` produces:
///   <prefix>_rss.csv      — t, beacon_id, rssi       (all beacons, sorted)
///   <prefix>_imu.csv      — t, accel, gyro_z, heading (observer)
///   <prefix>_target_imu.csv (only when moving targets were captured)
///
/// The format is deliberately plain so traces can be plotted or diffed with
/// standard tools, and so a real phone capture can be converted into the
/// same shape and replayed through the pipeline offline.

/// Write `capture` to `<prefix>_*.csv`; throws std::runtime_error on IO
/// failure.
void save_capture(const std::string& prefix, const WalkCapture& capture);

/// Read a capture bundle back. Missing target-IMU file is fine (stationary
/// capture); missing RSS/IMU files throw std::runtime_error.
WalkCapture load_capture(const std::string& prefix);

}  // namespace locble::sim
