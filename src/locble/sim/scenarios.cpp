#include "locble/sim/scenarios.hpp"

#include <stdexcept>

namespace locble::sim {

namespace {

using channel::BlockageClass;
using channel::DiskBlocker;
using channel::SiteModel;
using channel::Wall;
using locble::Vec2;

Wall light_wall(Vec2 a, Vec2 b, std::string label, double atten = 3.5) {
    return {a, b, BlockageClass::light, atten, std::move(label)};
}

Wall heavy_wall(Vec2 a, Vec2 b, std::string label, double atten = 9.0) {
    return {a, b, BlockageClass::heavy, atten, std::move(label)};
}

DiskBlocker furniture(Vec2 c, double r, std::string label, double atten = 2.5) {
    return {c, r, BlockageClass::light, atten, 0.0, 1e18, std::move(label)};
}

DiskBlocker pillar(Vec2 c, double r, std::string label, double atten = 10.0) {
    return {c, r, BlockageClass::heavy, atten, 0.0, 1e18, std::move(label)};
}

// Target distances per environment follow Sec. 7.4.1: 4.5, 6.4, 6.7, 6.8,
// 9.1 and 7.9 m for environments #1-#6.

Scenario meeting_room() {
    Scenario s;
    s.index = 1;
    s.name = "Meeting room";
    s.site.name = s.name;
    s.site.width_m = 5.0;
    s.site.height_m = 5.0;
    // Furniture sits below antenna height off the walk path: the paper's
    // best-case LOS environment.
    s.site.blockers.push_back(furniture({1.6, 3.9}, 0.4, "side table", 1.0));
    s.site.interference_noise_db = 0.5;
    s.site.clutter_factor = 1.0;
    s.site.shadowing_scale = 0.7;
    s.site.ambient_crossings = 1.0;
    s.default_beacon = {4.5, 3.4};  // 4.5 m from the start
    s.observer_start = {0.4, 0.6};
    s.observer_heading = 0.0;
    s.lshape = {3.0, 2.5, 1.5707963267948966};  // fits the 5x5 room
    s.paper_accuracy_m = 0.8;
    s.paper_ci_m = 0.2;
    return s;
}

Scenario hallway() {
    Scenario s;
    s.index = 2;
    s.name = "Hallway";
    s.site.name = s.name;
    s.site.width_m = 8.0;
    s.site.height_m = 3.0;
    // Corridor: waveguide multipath but a clear line of sight.
    s.site.clutter_factor = 1.4;
    s.site.interference_noise_db = 0.7;
    s.site.shadowing_scale = 0.8;
    s.site.ambient_crossings = 2.0;
    s.default_beacon = {6.9, 1.5};  // ~6.4 m from the start
    s.observer_start = {0.5, 0.7};
    s.observer_heading = 0.0;
    s.lshape = {4.0, 1.8, 1.5707963267948966};  // corridor limits the lateral leg
    s.paper_accuracy_m = 1.4;
    s.paper_ci_m = 0.3;
    return s;
}

Scenario bedroom() {
    Scenario s;
    s.index = 3;
    s.name = "Bedroom";
    s.site.name = s.name;
    s.site.width_m = 7.0;
    s.site.height_m = 7.0;
    s.site.walls.push_back(light_wall({3.5, 0.0}, {3.5, 4.2}, "wooden partition", 3.0));
    s.site.blockers.push_back(furniture({5.2, 2.2}, 0.6, "bed", 1.5));
    s.site.clutter_factor = 1.2;
    s.site.interference_noise_db = 0.6;
    s.site.shadowing_scale = 0.9;
    s.site.ambient_crossings = 1.0;
    s.default_beacon = {6.2, 4.6};  // ~6.7 m, behind the partition
    s.observer_start = {0.6, 0.8};
    s.observer_heading = 0.0;
    s.paper_accuracy_m = 1.4;
    s.paper_ci_m = 0.4;
    return s;
}

Scenario living_room() {
    Scenario s;
    s.index = 4;
    s.name = "Living room";
    s.site.name = s.name;
    s.site.width_m = 7.0;
    s.site.height_m = 7.0;
    s.site.blockers.push_back(furniture({3.2, 3.0}, 0.7, "sofa", 2.0));
    s.site.blockers.push_back(furniture({2.0, 5.2}, 0.4, "shelf", 2.5));
    s.site.clutter_factor = 1.3;
    s.site.interference_noise_db = 0.8;
    s.site.shadowing_scale = 0.9;
    s.site.ambient_crossings = 1.5;
    s.default_beacon = {6.0, 4.6};  // ~6.8 m
    s.observer_start = {0.5, 0.7};
    s.observer_heading = 0.0;
    s.paper_accuracy_m = 1.6;
    s.paper_ci_m = 0.3;
    return s;
}

Scenario restaurant() {
    Scenario s;
    s.index = 5;
    s.name = "Restaurant";
    s.site.name = s.name;
    s.site.width_m = 9.0;
    s.site.height_m = 10.0;
    for (int i = 0; i < 3; ++i)
        s.site.blockers.push_back(furniture({2.2 + 1.8 * i, 3.6 + 0.8 * (i % 2)}, 0.4,
                                            "table " + std::to_string(i + 1), 1.5));
    s.site.blockers.push_back(furniture({4.5, 6.5}, 0.3, "diner", 3.0));
    s.site.clutter_factor = 1.2;
    s.site.interference_noise_db = 0.9;
    s.site.shadowing_scale = 1.0;
    s.site.ambient_crossings = 2.5;
    s.default_beacon = {7.6, 7.3};  // ~9.1 m
    s.observer_start = {0.8, 1.0};
    s.observer_heading = 0.6;
    s.paper_accuracy_m = 1.6;
    s.paper_ci_m = 0.4;
    return s;
}

Scenario store() {
    Scenario s;
    s.index = 6;
    s.name = "Store";
    s.site.name = s.name;
    s.site.width_m = 9.0;
    s.site.height_m = 10.0;
    // Metal shelving: the target's aisle is one rack row deep from the
    // walk; highly reflective clutter (Sec. 7.4.1 calls this the hard
    // indoor case alongside the labs).
    s.site.walls.push_back(heavy_wall({2.0, 3.0}, {7.0, 3.0}, "rack row 1", 5.0));
    s.site.walls.push_back(heavy_wall({2.0, 6.0}, {5.0, 6.0}, "rack row 2", 5.0));
    s.site.clutter_factor = 1.6;
    s.site.interference_noise_db = 1.1;
    s.site.shadowing_scale = 1.1;
    s.site.ambient_crossings = 4.0;
    s.default_beacon = {6.3, 8.5};  // ~7.9 m, one rack row crossed
    s.observer_start = {3.5, 1.5};
    s.observer_heading = 0.0;
    s.lshape = {4.0, 3.0, 1.5707963267948966};  // along the aisle, turn past the racks
    s.paper_accuracy_m = 1.8;
    s.paper_ci_m = 0.6;
    return s;
}

Scenario labs() {
    Scenario s;
    s.index = 7;
    s.name = "Labs";
    s.site.name = s.name;
    s.site.width_m = 8.0;
    s.site.height_m = 10.0;
    // Concrete wall block in the transmission path (Sec. 7.7).
    s.site.walls.push_back(heavy_wall({0.0, 5.0}, {5.5, 5.0}, "concrete wall", 9.0));
    s.site.walls.push_back(heavy_wall({6.5, 2.0}, {6.5, 7.0}, "server racks", 9.0));
    s.site.clutter_factor = 2.0;
    s.site.interference_noise_db = 1.2;
    s.site.shadowing_scale = 1.2;
    s.site.ambient_crossings = 2.0;
    s.default_beacon = {4.0, 8.2};
    s.observer_start = {1.0, 1.0};
    s.observer_heading = 0.0;
    s.paper_accuracy_m = 2.3;
    s.paper_ci_m = 0.5;
    return s;
}

Scenario hall() {
    Scenario s;
    s.index = 8;
    s.name = "Hall";
    s.site.name = s.name;
    s.site.width_m = 9.0;
    s.site.height_m = 11.0;
    // A construction site in between (Sec. 7.7).
    s.site.walls.push_back(
        heavy_wall({3.0, 5.5}, {6.5, 5.5}, "construction hoarding", 8.0));
    s.site.blockers.push_back(pillar({2.2, 5.6}, 0.45, "pillar"));
    s.site.clutter_factor = 1.6;
    s.site.interference_noise_db = 1.0;
    s.site.shadowing_scale = 1.1;
    s.site.ambient_crossings = 3.0;
    s.default_beacon = {5.4, 9.0};
    s.observer_start = {1.0, 1.2};
    s.observer_heading = 0.4;
    s.paper_accuracy_m = 2.1;
    s.paper_ci_m = 0.5;
    return s;
}

Scenario parking_lot() {
    Scenario s;
    s.index = 9;
    s.name = "Parking lot";
    s.site.name = s.name;
    s.site.width_m = 16.0;
    s.site.height_m = 15.0;
    // Outdoor: open space, little multipath, little interference.
    s.site.clutter_factor = 0.6;
    s.site.interference_noise_db = 0.3;
    s.site.channel_offset_spread_db = 0.8;
    s.site.ambient_crossings = 0.5;
    s.site.shadowing_scale = 0.25;
    s.default_beacon = {7.0, 6.5};
    s.observer_start = {2.0, 2.0};
    s.observer_heading = 0.5;
    s.paper_accuracy_m = 1.2;
    s.paper_ci_m = 0.5;
    return s;
}

}  // namespace

Scenario scenario(int index) {
    switch (index) {
        case 1: return meeting_room();
        case 2: return hallway();
        case 3: return bedroom();
        case 4: return living_room();
        case 5: return restaurant();
        case 6: return store();
        case 7: return labs();
        case 8: return hall();
        case 9: return parking_lot();
        default: throw std::out_of_range("scenario: index must be 1..9");
    }
}

std::vector<Scenario> all_scenarios() {
    std::vector<Scenario> out;
    for (int i = 1; i <= 9; ++i) out.push_back(scenario(i));
    return out;
}

}  // namespace locble::sim
