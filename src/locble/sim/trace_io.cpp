#include "locble/sim/trace_io.hpp"

#include <algorithm>
#include <filesystem>

#include "locble/common/csv.hpp"

namespace locble::sim {

namespace {

CsvTable imu_to_csv(const imu::ImuTrace& trace, std::uint64_t id) {
    CsvTable t;
    t.header = {"device_id", "t", "accel", "gyro_z", "heading"};
    for (std::size_t i = 0; i < trace.accel_vertical.size(); ++i) {
        const double tt = trace.accel_vertical[i].t;
        t.rows.push_back({static_cast<double>(id), tt, trace.accel_vertical[i].value,
                          i < trace.gyro_z.size() ? trace.gyro_z[i].value : 0.0,
                          i < trace.mag_heading.size() ? trace.mag_heading[i].value
                                                       : 0.0});
    }
    return t;
}

imu::ImuTrace imu_from_rows(const CsvTable& t, std::uint64_t id) {
    imu::ImuTrace out;
    const std::size_t id_col = t.column("device_id");
    const std::size_t t_col = t.column("t");
    const std::size_t a_col = t.column("accel");
    const std::size_t g_col = t.column("gyro_z");
    const std::size_t h_col = t.column("heading");
    for (const auto& row : t.rows) {
        if (static_cast<std::uint64_t>(row[id_col]) != id) continue;
        out.accel_vertical.push_back({row[t_col], row[a_col]});
        out.gyro_z.push_back({row[t_col], row[g_col]});
        out.mag_heading.push_back({row[t_col], row[h_col]});
    }
    return out;
}

}  // namespace

void save_capture(const std::string& prefix, const WalkCapture& capture) {
    CsvTable rss;
    rss.header = {"t", "beacon_id", "rssi"};
    for (const auto& [id, series] : capture.rss)
        for (const auto& s : series)
            rss.rows.push_back({s.t, static_cast<double>(id), s.value});
    std::sort(rss.rows.begin(), rss.rows.end(),
              [](const auto& a, const auto& b) { return a[0] < b[0]; });
    write_csv_file(prefix + "_rss.csv", rss);

    write_csv_file(prefix + "_imu.csv", imu_to_csv(capture.observer_imu, 0));

    if (!capture.target_imu.empty()) {
        CsvTable targets;
        targets.header = {"device_id", "t", "accel", "gyro_z", "heading"};
        for (const auto& [id, trace] : capture.target_imu) {
            const CsvTable one = imu_to_csv(trace, id);
            targets.rows.insert(targets.rows.end(), one.rows.begin(), one.rows.end());
        }
        write_csv_file(prefix + "_target_imu.csv", targets);
    }
}

WalkCapture load_capture(const std::string& prefix) {
    WalkCapture out;
    const CsvTable rss = read_csv_file(prefix + "_rss.csv");
    const std::size_t t_col = rss.column("t");
    const std::size_t id_col = rss.column("beacon_id");
    const std::size_t v_col = rss.column("rssi");
    for (const auto& row : rss.rows)
        out.rss[static_cast<std::uint64_t>(row[id_col])].push_back(
            {row[t_col], row[v_col]});
    for (auto& [id, series] : out.rss) {
        (void)id;
        std::sort(series.begin(), series.end(),
                  [](const Sample& a, const Sample& b) { return a.t < b.t; });
        if (!series.empty()) out.duration_s = std::max(out.duration_s, series.back().t);
    }

    const CsvTable imu = read_csv_file(prefix + "_imu.csv");
    out.observer_imu = imu_from_rows(imu, 0);
    if (!out.observer_imu.accel_vertical.empty())
        out.duration_s =
            std::max(out.duration_s, out.observer_imu.accel_vertical.back().t);

    const std::string target_path = prefix + "_target_imu.csv";
    if (std::filesystem::exists(target_path)) {
        const CsvTable targets = read_csv_file(target_path);
        const std::size_t tid_col = targets.column("device_id");
        std::vector<std::uint64_t> ids;
        for (const auto& row : targets.rows) {
            const auto id = static_cast<std::uint64_t>(row[tid_col]);
            if (std::find(ids.begin(), ids.end(), id) == ids.end()) ids.push_back(id);
        }
        for (auto id : ids) out.target_imu[id] = imu_from_rows(targets, id);
    }
    return out;
}

}  // namespace locble::sim
