#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "locble/ble/advertiser.hpp"
#include "locble/ble/scanner.hpp"
#include "locble/channel/propagation.hpp"
#include "locble/common/rng.hpp"
#include "locble/common/timeseries.hpp"
#include "locble/imu/imu_synth.hpp"
#include "locble/imu/trajectory.hpp"

namespace locble::sim {

/// One beacon deployed in a site.
struct BeaconPlacement {
    std::uint64_t id{1};
    locble::Vec2 position{};  ///< used when `motion` is empty
    ble::AdvertiserProfile profile{};
    /// A moving target device (e.g. a phone advertising); positions come
    /// from this trajectory when set.
    std::optional<imu::Trajectory> motion;
};

/// Everything a phone records during one measurement walk: per-beacon RSS
/// streams (as the BLE API delivers them) and the observer's IMU capture.
/// For moving targets, the target's own IMU capture is included (it is
/// transferred to the observer after the measurement, Sec. 5).
struct WalkCapture {
    std::map<std::uint64_t, locble::TimeSeries> rss;
    imu::ImuTrace observer_imu;
    std::map<std::uint64_t, imu::ImuTrace> target_imu;
    double duration_s{0.0};
};

/// Simulates one measurement walk end to end: advertisers emit PDUs on the
/// hop sequence, the scanner duty-cycles and loses packets, each delivered
/// report is assigned an RSSI by the per-link channel simulator, and the
/// receiver profile adds chipset offset/noise/quantization. The observer's
/// IMU streams are synthesized from the same trajectory.
class CaptureRunner {
public:
    struct Config {
        ble::Scanner::Config scanner{};
        imu::ImuSynthesizer::Config imu{};
    };

    CaptureRunner() : CaptureRunner(Config{}) {}
    explicit CaptureRunner(const Config& cfg) : cfg_(cfg) {}

    WalkCapture run(const channel::SiteModel& site,
                    const std::vector<BeaconPlacement>& beacons,
                    const imu::Trajectory& observer, locble::Rng& rng) const;

    const Config& config() const { return cfg_; }

private:
    Config cfg_;
};

/// Estimated initial heading of a device from the first half second of its
/// magnetometer stream — used to align two devices' dead-reckoning frames
/// in the moving-target mode. Throws std::invalid_argument on an empty
/// stream.
double initial_mag_heading(const imu::ImuTrace& imu);

}  // namespace locble::sim
