#pragma once

#include <vector>

#include "locble/sim/harness.hpp"

namespace locble::sim {

/// One measure-and-approach round during navigation.
struct NavigationRecord {
    double distance_to_target_m{0.0};  ///< true distance when measuring
    double estimate_error_m{0.0};      ///< error of that round's estimate
    bool measured{false};
};

/// Outcome of one navigation session (Sec. 7.3 / Fig. 10(b), Fig. 12(b)).
struct NavigationRun {
    std::vector<NavigationRecord> rounds;
    double final_distance_m{0.0};  ///< navigation destination vs true beacon
    bool reached{false};
};

/// Simulates LocBLE's navigation mode: measure with an L-shaped walk,
/// follow the guidance toward the estimate (with dead-reckoning noise),
/// re-measure, repeat until the guidance says "arrived" or rounds run out.
class NavigationSimulator {
public:
    struct Config {
        MeasurementConfig measurement{};
        int max_rounds{6};
        double approach_fraction{0.7};   ///< walked share of remaining distance
        double arrive_distance_m{1.0};   ///< guidance arrival radius
        double reckoning_noise_frac{0.04};  ///< DR error per metre walked
        /// Sec. 9.2's last-metre refinement: blend the proximity-derived
        /// range into close-in estimates before following them.
        bool use_proximity_assist{false};
    };

    NavigationSimulator() : NavigationSimulator(Config{}) {}
    explicit NavigationSimulator(const Config& cfg) : cfg_(cfg) {}

    NavigationRun run(const Scenario& sc, const BeaconPlacement& target,
                      const locble::Vec2& start, double initial_heading,
                      locble::Rng& rng) const;

    const Config& config() const { return cfg_; }

private:
    Config cfg_;
};

}  // namespace locble::sim
