#pragma once

#include <string>
#include <vector>

#include "locble/channel/propagation.hpp"
#include "locble/common/vec2.hpp"

namespace locble::sim {

/// The paper's measurement walk: an L of two legs with a right-angle turn
/// (Sec. 5.1); leg lengths are bounded by each site's walkable space.
struct LShapeSpec {
    double leg1_m{3.5};
    double leg2_m{3.0};
    double turn_rad{1.5707963267948966};  ///< +90 deg
};

/// One of the paper's experimental environments (Table 1): the site's
/// physical model plus the default measurement geometry used in Sec. 7.4.
struct Scenario {
    int index{0};
    std::string name;
    channel::SiteModel site;
    locble::Vec2 default_beacon;   ///< default target placement
    locble::Vec2 observer_start;   ///< default walk origin
    double observer_heading{0.0};  ///< initial walking direction (rad)
    LShapeSpec lshape{};           ///< walk that fits this site
    double paper_accuracy_m{0.0};  ///< Table 1's reported mean accuracy
    double paper_ci_m{0.0};        ///< Table 1's 75% confidence interval
};

/// Build environment #1..#9 from Table 1 (meeting room, hallway, bedroom,
/// living room, restaurant, store, labs, hall, parking lot). Throws
/// std::out_of_range for other indices.
Scenario scenario(int index);

/// All nine environments in order.
std::vector<Scenario> all_scenarios();

}  // namespace locble::sim
