#include "locble/sim/navigation_sim.hpp"

#include <algorithm>
#include <cmath>

#include "locble/core/navigation.hpp"
#include "locble/core/proximity_assist.hpp"

namespace locble::sim {

NavigationRun NavigationSimulator::run(const Scenario& sc,
                                       const BeaconPlacement& target,
                                       const locble::Vec2& start,
                                       double initial_heading, locble::Rng& rng) const {
    NavigationRun out;
    locble::Vec2 position = start;
    double heading = initial_heading;

    auto clamp_inside = [&](locble::Vec2 p) {
        p.x = std::clamp(p.x, 0.3, sc.site.width_m - 0.3);
        p.y = std::clamp(p.y, 0.3, sc.site.height_m - 0.3);
        return p;
    };

    for (int round = 0; round < cfg_.max_rounds; ++round) {
        NavigationRecord rec;
        rec.distance_to_target_m = locble::Vec2::distance(position, target.position);

        // Measure with an L-shaped walk anchored at the current pose.
        const LShapeSpec spec =
            cfg_.measurement.lshape ? *cfg_.measurement.lshape : sc.lshape;
        const imu::Trajectory walk = imu::make_l_shape(position, heading, spec.leg1_m,
                                                       spec.leg2_m, spec.turn_rad);
        const MeasurementOutcome m =
            measure_stationary_with_walk(sc, target, walk, cfg_.measurement, rng);
        const locble::Vec2 walk_end = walk.pose_at(walk.duration()).position;

        if (!m.ok) {
            // No fit: probe forward a little and try again.
            rec.measured = false;
            out.rounds.push_back(rec);
            position = clamp_inside(walk_end + locble::unit_from_angle(heading) * 1.5);
            continue;
        }
        rec.measured = true;
        locble::Vec2 estimate_site = m.estimate_site;
        if (cfg_.use_proximity_assist && m.detail.fit) {
            // Refine close-in estimates with the proximity range read off
            // the capture's tail (the observer's final seconds).
            const core::ProximityAssist assist;
            const double tail_t0 = m.rss.empty() ? 0.0 : m.rss.back().t - 1.5;
            const locble::Vec2 end_obs_frame = sim::site_to_observer(
                walk.pose_at(walk.duration()).position, position, heading);
            const auto refined = assist.refine(
                *m.detail.fit, slice(m.rss, tail_t0, 1e18), end_obs_frame);
            if (refined.engaged)
                estimate_site = observer_to_site(refined.location, position, heading);
        }
        rec.estimate_error_m = locble::Vec2::distance(estimate_site, target.position);
        out.rounds.push_back(rec);

        // Follow the guidance from the walk's end toward the estimate.
        const core::Navigator navigator(estimate_site, cfg_.arrive_distance_m);
        const core::Guidance g = navigator.guide(walk_end, heading);
        // A single long-range estimate can coincidentally land next to the
        // walk's end; trust "arrived" only after a confirming second round.
        if (g.arrived && round > 0) {
            position = walk_end;
            break;
        }
        const double stride = g.distance_m * cfg_.approach_fraction;
        const double aim = locble::wrap_angle(heading + g.bearing_rad);
        locble::Vec2 next = walk_end + locble::unit_from_angle(aim) * stride;
        // Dead-reckoning error accumulates with distance walked.
        const double noise = cfg_.reckoning_noise_frac * stride;
        next += {rng.gaussian(0.0, noise), rng.gaussian(0.0, noise)};
        position = clamp_inside(next);
        heading = aim;
        // Keep re-measuring until a *fresh* estimate confirms arrival — a
        // stale long-range estimate must not end the session (Fig. 12(b):
        // accuracy improves as the observer approaches).
    }

    out.final_distance_m = locble::Vec2::distance(position, target.position);
    out.reached = out.final_distance_m <= cfg_.arrive_distance_m + 1.5;
    return out;
}

}  // namespace locble::sim
