#include "locble/sim/harness.hpp"

#include <cmath>
#include <stdexcept>

namespace locble::sim {

const core::EnvAware& shared_envaware() {
    // Function-local static: concurrent first calls block until the one
    // training pass finishes (C++11 magic-static guarantee), making this
    // safe to call from trial-runner worker threads. Benches that want the
    // training cost out of their timed region can call it once up front.
    static const core::EnvAware instance = [] {
        locble::Rng rng(20170417);
        const core::EnvDatasetConfig cfg{};
        const ml::Dataset data = generate_env_dataset(cfg, rng);
        core::EnvAware env;
        env.train(data);
        return env;
    }();
    return instance;
}

locble::Vec2 observer_to_site(const locble::Vec2& v, const locble::Vec2& start,
                              double heading) {
    return start + v.rotated(heading);
}

locble::Vec2 site_to_observer(const locble::Vec2& v, const locble::Vec2& start,
                              double heading) {
    return (v - start).rotated(-heading);
}

imu::Trajectory default_l_walk(const Scenario& sc,
                               const std::optional<LShapeSpec>& spec) {
    const LShapeSpec& l = spec ? *spec : sc.lshape;
    return imu::make_l_shape(sc.observer_start, sc.observer_heading, l.leg1_m, l.leg2_m,
                             l.turn_rad);
}

namespace {

core::LocBle build_pipeline(const MeasurementConfig& cfg, const BeaconPlacement& target) {
    core::LocBle::Config pipeline_cfg = cfg.pipeline;
    // The phone reads the calibrated 1 m power straight from the beacon's
    // advertisement frame; feed it to the solver as the Gamma prior.
    if (!pipeline_cfg.gamma_prior_dbm)
        pipeline_cfg.gamma_prior_dbm = target.profile.measured_power_dbm;
    if (pipeline_cfg.use_envaware) return core::LocBle(pipeline_cfg, shared_envaware());
    return core::LocBle(pipeline_cfg);
}

MeasurementOutcome finish_outcome(const core::LocateResult& result,
                                  const locble::Vec2& truth_site,
                                  const locble::Vec2& start, double heading) {
    MeasurementOutcome out;
    out.detail = result;
    out.truth_site = truth_site;
    out.truth_observer_frame = site_to_observer(truth_site, start, heading);
    if (!result.fit) return out;
    out.ok = true;
    out.estimate_observer_frame = result.fit->location;
    out.estimate_site = observer_to_site(result.fit->location, start, heading);
    out.error_m = locble::Vec2::distance(out.estimate_site, truth_site);
    out.x_error_m =
        std::abs(out.estimate_observer_frame.x - out.truth_observer_frame.x);
    out.h_error_m =
        std::abs(out.estimate_observer_frame.y - out.truth_observer_frame.y);
    return out;
}

}  // namespace

MeasurementOutcome measure_stationary_with_walk(const Scenario& sc,
                                                const BeaconPlacement& target,
                                                const imu::Trajectory& walk,
                                                const MeasurementConfig& cfg,
                                                locble::Rng& rng) {
    const CaptureRunner runner(cfg.capture);
    const WalkCapture capture = runner.run(sc.site, {target}, walk, rng);

    const motion::MotionEstimate observer_motion =
        motion::DeadReckoner(cfg.reckoner).track(capture.observer_imu);

    const core::LocBle pipeline = build_pipeline(cfg, target);
    const auto it = capture.rss.find(target.id);
    if (it == capture.rss.end() || it->second.empty())
        return finish_outcome({}, target.position, walk.pose_at(0.0).position,
                              walk.pose_at(0.0).heading);
    const core::LocateResult result = pipeline.locate(it->second, observer_motion);
    MeasurementOutcome out = finish_outcome(result, target.position,
                                            walk.pose_at(0.0).position,
                                            walk.pose_at(0.0).heading);
    out.rss = it->second;
    return out;
}

MeasurementOutcome measure_stationary(const Scenario& sc, const BeaconPlacement& target,
                                      const MeasurementConfig& cfg, locble::Rng& rng) {
    return measure_stationary_with_walk(sc, target, default_l_walk(sc, cfg.lshape), cfg,
                                        rng);
}

MeasurementOutcome measure_moving(const Scenario& sc, const BeaconPlacement& target,
                                  const imu::Trajectory& observer_walk,
                                  const MeasurementConfig& cfg, locble::Rng& rng) {
    if (!target.motion)
        throw std::invalid_argument("measure_moving: target has no trajectory");

    const CaptureRunner runner(cfg.capture);
    const WalkCapture capture = runner.run(sc.site, {target}, observer_walk, rng);

    const motion::DeadReckoner reckoner(cfg.reckoner);
    const motion::MotionEstimate observer_motion = reckoner.track(capture.observer_imu);

    // The target's own capture travels back to the observer (Sec. 5); its
    // dead-reckoned frame is aligned through the compass headings both
    // devices measured at their starting points.
    const auto& target_imu = capture.target_imu.at(target.id);
    motion::DeadReckoner::Config target_reckoner = cfg.reckoner;
    target_reckoner.snap_right_angles = false;  // free-form target movement
    const motion::MotionEstimate target_motion =
        motion::DeadReckoner(target_reckoner).track(target_imu);
    const double frame_rotation =
        initial_mag_heading(target_imu) - initial_mag_heading(capture.observer_imu);

    const core::LocBle pipeline = build_pipeline(cfg, target);
    const auto it = capture.rss.find(target.id);
    const locble::Vec2 start = observer_walk.pose_at(0.0).position;
    const double heading = observer_walk.pose_at(0.0).heading;
    const locble::Vec2 truth = target.motion->pose_at(0.0).position;
    if (it == capture.rss.end() || it->second.empty())
        return finish_outcome({}, truth, start, heading);

    // The observer frame is anchored at the *observer's* start; the target
    // moves relative to its own start, so its displacements (not absolute
    // positions) feed the solver. locate() handles that via p = b - a.
    const core::LocateResult result =
        pipeline.locate(it->second, observer_motion, target_motion, frame_rotation);
    MeasurementOutcome out = finish_outcome(result, truth, start, heading);
    out.rss = it->second;
    return out;
}

ClusteredOutcome measure_with_cluster(const Scenario& sc, const BeaconPlacement& target,
                                      const std::vector<BeaconPlacement>& neighbors,
                                      const MeasurementConfig& cfg, locble::Rng& rng) {
    const imu::Trajectory walk = default_l_walk(sc, cfg.lshape);
    std::vector<BeaconPlacement> all{target};
    all.insert(all.end(), neighbors.begin(), neighbors.end());

    const CaptureRunner runner(cfg.capture);
    const WalkCapture capture = runner.run(sc.site, all, walk, rng);
    const motion::MotionEstimate observer_motion =
        motion::DeadReckoner(cfg.reckoner).track(capture.observer_imu);
    const core::LocBle pipeline = build_pipeline(cfg, target);

    const locble::Vec2 start = walk.pose_at(0.0).position;
    const double heading = walk.pose_at(0.0).heading;

    ClusteredOutcome out;
    std::optional<core::ClusterCandidate> target_candidate;
    std::vector<core::ClusterCandidate> neighbor_candidates;
    for (const auto& b : all) {
        const auto it = capture.rss.find(b.id);
        if (it == capture.rss.end() || it->second.empty()) continue;
        const core::LocateResult result = pipeline.locate(it->second, observer_motion);
        if (b.id == target.id)
            out.single = finish_outcome(result, target.position, start, heading);
        if (!result.fit) continue;
        core::ClusterCandidate cand;
        cand.id = b.id;
        cand.rss = it->second;
        cand.fit = *result.fit;
        if (b.id == target.id)
            target_candidate = std::move(cand);
        else
            neighbor_candidates.push_back(std::move(cand));
    }

    if (!target_candidate) {
        out.calibrated = out.single;
        return out;
    }

    const core::ClusteringCalibrator calibrator;
    out.cluster = calibrator.calibrate(*target_candidate, neighbor_candidates);

    core::LocateResult calibrated_result = out.single.detail;
    if (calibrated_result.fit) {
        calibrated_result.fit->location = out.cluster.calibrated;
        calibrated_result.fit->confidence = out.cluster.combined_confidence;
    }
    out.calibrated = finish_outcome(calibrated_result, target.position, start, heading);
    return out;
}

std::vector<MeasurementOutcome> run_stationary_trials(const Scenario& sc,
                                                      const BeaconPlacement& target,
                                                      const MeasurementConfig& cfg,
                                                      const runtime::TrialPlan& plan) {
    shared_envaware();  // train outside the worker threads / timed region
    return run_trials_parallel(plan, [&](int, locble::Rng& rng) {
        return measure_stationary(sc, target, cfg, rng);
    });
}

std::vector<ClusteredOutcome> run_cluster_trials(
    const Scenario& sc, const BeaconPlacement& target,
    const std::vector<BeaconPlacement>& neighbors, const MeasurementConfig& cfg,
    const runtime::TrialPlan& plan) {
    shared_envaware();
    return run_trials_parallel(plan, [&](int, locble::Rng& rng) {
        return measure_with_cluster(sc, target, neighbors, cfg, rng);
    });
}

}  // namespace locble::sim
