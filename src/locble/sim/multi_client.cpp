#include "locble/sim/multi_client.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "locble/motion/dead_reckoning.hpp"
#include "locble/sim/capture.hpp"

namespace locble::sim {

namespace {

/// Stable, non-contiguous client ids: exercises the hash-based shard
/// assignment rather than a trivial modulo layout.
serve::ClientId client_id_of(int index) {
    return 0x10000ull + 37ull * static_cast<serve::ClientId>(index);
}

}  // namespace

MultiClientWorkload make_multi_client_workload(const MultiClientConfig& cfg,
                                               std::uint64_t seed) {
    if (cfg.clients < 1 || cfg.beacons < 1)
        throw std::invalid_argument("multi_client: need >= 1 client and beacon");

    const Scenario sc = scenario(cfg.scenario_index);

    // One shared deployment: beacons on a deterministic ring around the
    // scenario's default placement, ids 1..beacons.
    std::vector<BeaconPlacement> beacons;
    beacons.reserve(static_cast<std::size_t>(cfg.beacons));
    MultiClientWorkload out;
    for (int b = 0; b < cfg.beacons; ++b) {
        BeaconPlacement p;
        p.id = static_cast<std::uint64_t>(b + 1);
        const double ang =
            2.0 * 3.14159265358979323846 * static_cast<double>(b) /
            static_cast<double>(cfg.beacons);
        p.position = {sc.default_beacon.x + cfg.beacon_ring_m * std::cos(ang),
                      sc.default_beacon.y + cfg.beacon_ring_m * std::sin(ang)};
        out.beacon_ids.push_back(p.id);
        out.beacon_truth[p.id] = p.position;
        beacons.push_back(p);
    }
    out.measured_power_dbm = beacons.front().profile.measured_power_dbm;

    const imu::Trajectory walk = default_l_walk(sc, cfg.measurement.lshape);
    const CaptureRunner runner(cfg.measurement.capture);
    const motion::DeadReckoner reckoner(cfg.measurement.reckoner);

    for (int c = 0; c < cfg.clients; ++c) {
        const serve::ClientId id = client_id_of(c);
        out.client_ids.push_back(id);
        const double t0 = cfg.client_stagger_s * static_cast<double>(c);

        // Per-client seed stream: the capture (channel fading, scanner
        // losses, IMU noise) is independent across clients yet a pure
        // function of (seed, client index) — generation order never
        // matters.
        locble::Rng rng =
            locble::Rng::for_stream(seed, static_cast<std::uint64_t>(c));
        const WalkCapture capture = runner.run(sc.site, beacons, walk, rng);
        const motion::MotionEstimate motion = reckoner.track(capture.observer_imu);

        // Idle-cohort truncation happens on the client's own clock, after
        // the full capture ran, so an idle client's early events are
        // exactly the active run's prefix (generation stays deterministic).
        const bool idle = c < cfg.idle_clients;
        for (const auto& p : motion.path) {
            if (idle && p.t > cfg.idle_active_s) break;
            out.events.push_back(serve::pose_event(id, t0 + p.t, p.position));
        }
        for (const auto& [beacon, rss] : capture.rss)
            for (const auto& s : rss) {
                if (idle && s.t > cfg.idle_active_s) continue;
                out.events.push_back(serve::adv_event(id, t0 + s.t, beacon, s.value));
            }
    }

    // Global interleave with a total order: by time, then client, then
    // kind (poses first so a same-instant adv can pair), then beacon.
    std::sort(out.events.begin(), out.events.end(),
              [](const serve::Event& a, const serve::Event& b) {
                  if (a.t != b.t) return a.t < b.t;
                  if (a.client != b.client) return a.client < b.client;
                  if (a.kind != b.kind)
                      return static_cast<int>(a.kind) > static_cast<int>(b.kind);
                  return a.beacon < b.beacon;
              });
    out.duration_s = out.events.empty() ? 0.0 : out.events.back().t;
    return out;
}

}  // namespace locble::sim
