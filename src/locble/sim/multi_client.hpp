#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "locble/common/vec2.hpp"
#include "locble/serve/event.hpp"
#include "locble/sim/harness.hpp"
#include "locble/sim/scenarios.hpp"

namespace locble::sim {

/// Shape of a synthetic multi-client serve workload: many phones walking
/// the same site, each scanning the same beacon deployment.
struct MultiClientConfig {
    int clients{64};
    int beacons{8};
    int scenario_index{2};  ///< Table 1 environment the fleet walks in
    /// Capture / dead-reckoning configuration shared by every client (the
    /// pipeline member is unused here — the serve session carries its own).
    MeasurementConfig measurement{};
    /// Client c's whole timeline is shifted by c * stagger seconds, so the
    /// fleet's events interleave instead of marching in lockstep.
    double client_stagger_s{0.7};
    /// Ring radius of the beacon deployment around the scenario's default
    /// target placement.
    double beacon_ring_m{1.5};
    /// The first `idle_clients` of the fleet fall silent `idle_active_s`
    /// seconds into their own (staggered) timeline: events past that offset
    /// are not generated. Models the mostly-idle fleets the incremental
    /// snapshot path is built for (docs/SERVING.md) — the cohort's sessions
    /// stay resident but stop dirtying.
    int idle_clients{0};
    double idle_active_s{10.0};
};

/// A generated workload: one interleaved, time-sorted event stream plus
/// the ground truth needed by tests and benches.
struct MultiClientWorkload {
    /// All clients' pose + advertisement events, sorted by
    /// (t, client, kind, beacon) — poses sort before advs at equal t so a
    /// pairing pose is always enqueued first.
    std::vector<serve::Event> events;
    std::vector<serve::ClientId> client_ids;  ///< in client index order
    std::vector<std::uint64_t> beacon_ids;    ///< in beacon index order
    std::map<std::uint64_t, locble::Vec2> beacon_truth;  ///< site frame
    int measured_power_dbm{-59};  ///< the deployment's advertised 1 m power
    double duration_s{0.0};       ///< max event timestamp
};

/// Deterministically synthesize a multi-client workload: every client runs
/// its own CaptureRunner measurement walk (channel + scanner randomness
/// from Rng::for_stream(seed, client), so the stream set is identical
/// whatever order clients are generated in), dead-reckons its own pose
/// track, and contributes pose events (from the reckoned path) plus adv
/// events (from the per-beacon RSS streams).
MultiClientWorkload make_multi_client_workload(const MultiClientConfig& cfg,
                                               std::uint64_t seed);

}  // namespace locble::sim
