#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "locble/core/clustering.hpp"
#include "locble/core/pipeline.hpp"
#include "locble/motion/dead_reckoning.hpp"
#include "locble/runtime/trial_runner.hpp"
#include "locble/sim/capture.hpp"
#include "locble/sim/scenarios.hpp"

namespace locble::sim {

/// A default EnvAware trained once on the synthetic LOS/p-LOS/NLOS corpus
/// (deterministic; reused by every experiment and bench).
///
/// Thread safety: the instance is a function-local static, so concurrent
/// first calls are serialized by the C++11 "magic static" guarantee — the
/// training runs exactly once and every caller observes the fully trained
/// model. After construction the object is only read through const methods
/// (classify() et al. carry no mutable state), so sharing it across the
/// parallel trial runner's worker threads is safe.
const core::EnvAware& shared_envaware();

/// Everything configurable about one simulated measurement.
struct MeasurementConfig {
    core::LocBle::Config pipeline{};
    CaptureRunner::Config capture{};
    motion::DeadReckoner::Config reckoner{};
    /// Override of the measurement walk; when unset, the scenario's own
    /// (site-fitting) L-shape is used.
    std::optional<LShapeSpec> lshape;

    MeasurementConfig() {
        // The app instructs the user to make a right-angle turn (Sec. 5.2).
        reckoner.snap_right_angles = true;
    }
};

/// Result of one measurement run, with the estimate expressed both in the
/// observer frame (the paper's (x, h)) and in site coordinates.
struct MeasurementOutcome {
    bool ok{false};
    locble::Vec2 estimate_observer_frame;
    locble::Vec2 truth_observer_frame;
    locble::Vec2 estimate_site;
    locble::Vec2 truth_site;
    double error_m{0.0};
    double x_error_m{0.0};  ///< |x_hat - x| in the observer frame
    double h_error_m{0.0};  ///< |h_hat - h|
    core::LocateResult detail;
    /// The target's RSS stream as captured (post-processing consumers such
    /// as the proximity assist read its tail).
    locble::TimeSeries rss;
};

/// Map a point from the observer frame (origin `start`, +x along `heading`)
/// into site coordinates, and back.
locble::Vec2 observer_to_site(const locble::Vec2& v, const locble::Vec2& start,
                              double heading);
locble::Vec2 site_to_observer(const locble::Vec2& v, const locble::Vec2& start,
                              double heading);

/// Run one stationary-target measurement: L-shaped walk from the scenario's
/// start, full capture, dead reckoning, LocBLE pipeline.
MeasurementOutcome measure_stationary(const Scenario& sc, const BeaconPlacement& target,
                                      const MeasurementConfig& cfg, locble::Rng& rng);

/// Same, with an explicit observer trajectory (used by the distance sweep
/// and navigation experiments).
MeasurementOutcome measure_stationary_with_walk(const Scenario& sc,
                                                const BeaconPlacement& target,
                                                const imu::Trajectory& walk,
                                                const MeasurementConfig& cfg,
                                                locble::Rng& rng);

/// Moving-target measurement (Sec. 7.4.2): both devices move; the target's
/// RSS + motion transfer to the observer afterwards; frames are aligned via
/// the shared compass reference. Error is measured at the target's initial
/// location.
MeasurementOutcome measure_moving(const Scenario& sc, const BeaconPlacement& target,
                                  const imu::Trajectory& observer_walk,
                                  const MeasurementConfig& cfg, locble::Rng& rng);

/// Multi-beacon measurement with clustering calibration (Sec. 6): the
/// target plus `neighbors` are captured in one walk, each beacon gets its
/// own fit, DTW clustering selects the co-located set and re-weights.
struct ClusteredOutcome {
    MeasurementOutcome single;      ///< target-only estimate
    MeasurementOutcome calibrated;  ///< after clustering calibration
    core::ClusterCalibration cluster;
};
ClusteredOutcome measure_with_cluster(const Scenario& sc, const BeaconPlacement& target,
                                      const std::vector<BeaconPlacement>& neighbors,
                                      const MeasurementConfig& cfg, locble::Rng& rng);

/// Build the scenario's default L-shaped measurement walk (using `spec`
/// when given, otherwise the scenario's own L-shape).
imu::Trajectory default_l_walk(const Scenario& sc,
                               const std::optional<LShapeSpec>& spec = std::nullopt);

// ---------------------------------------------------------------------------
// Parallel Monte-Carlo batch entry points
//
// Every bench and sweep in this repo repeats one of the measure_* functions
// over hundreds of independently seeded trials. These helpers run such a
// batch on the runtime::TrialRunner: trial t draws from
// Rng::for_stream(plan.seed, t) and lands in slot t of the result vector,
// so the output is bit-identical for any thread count.
// ---------------------------------------------------------------------------

/// Run an arbitrary per-trial function `fn(trial_index, rng)` in parallel
/// under `plan`; results are ordered by trial index.
template <class Fn>
auto run_trials_parallel(const runtime::TrialPlan& plan, Fn&& fn) {
    runtime::TrialRunner runner(plan.threads);
    return runner.run(plan.trials, plan.seed, std::forward<Fn>(fn));
}

/// Batch of stationary-target measurements (one scenario, one beacon,
/// `plan.trials` independently seeded walks).
std::vector<MeasurementOutcome> run_stationary_trials(const Scenario& sc,
                                                      const BeaconPlacement& target,
                                                      const MeasurementConfig& cfg,
                                                      const runtime::TrialPlan& plan);

/// Batch of clustered measurements (Sec. 6 layout).
std::vector<ClusteredOutcome> run_cluster_trials(
    const Scenario& sc, const BeaconPlacement& target,
    const std::vector<BeaconPlacement>& neighbors, const MeasurementConfig& cfg,
    const runtime::TrialPlan& plan);

}  // namespace locble::sim
