#include "locble/sim/capture.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "locble/channel/fading.hpp"
#include "locble/motion/turn_detector.hpp"

namespace locble::sim {

WalkCapture CaptureRunner::run(const channel::SiteModel& site,
                               const std::vector<BeaconPlacement>& beacons,
                               const imu::Trajectory& observer,
                               locble::Rng& rng) const {
    WalkCapture out;
    out.duration_s = observer.duration();

    // Ambient foot traffic for this run: short-lived light blockers at
    // random places/times, shared by every link they cross.
    channel::SiteModel live_site = site;
    locble::Rng traffic_rng = rng.fork();
    const double expected = site.ambient_crossings * out.duration_s / 10.0;
    const int crossings = static_cast<int>(std::floor(expected)) +
                          (traffic_rng.chance(expected - std::floor(expected)) ? 1 : 0);
    for (int k = 0; k < crossings; ++k) {
        channel::DiskBlocker person;
        person.center = {traffic_rng.uniform(0.1 * site.width_m, 0.9 * site.width_m),
                         traffic_rng.uniform(0.1 * site.height_m, 0.9 * site.height_m)};
        person.radius = 0.3;
        person.blockage = channel::BlockageClass::light;
        person.attenuation_db = traffic_rng.uniform(3.0, 6.0);
        person.t_start = traffic_rng.uniform(0.0, out.duration_s);
        person.t_end = person.t_start + traffic_rng.uniform(1.0, 2.5);
        person.label = "passer-by";
        live_site.blockers.push_back(person);
    }

    // Observer IMU.
    locble::Rng imu_rng = rng.fork();
    out.observer_imu = imu::ImuSynthesizer(cfg_.imu).synthesize(observer, imu_rng);

    const ble::Scanner scanner(cfg_.scanner);
    // One shadowing field per capture: co-located beacons must shadow
    // together (Sec. 6.1's clustering relies on this shared structure).
    locble::Rng field_rng = rng.fork();
    const auto shadowing = std::make_shared<channel::ShadowingField>(
        channel::params_for(channel::PropagationClass::los).shadowing_decorrelation_m,
        field_rng);
    for (const auto& beacon : beacons) {
        locble::Rng adv_rng = rng.fork();
        locble::Rng scan_rng = rng.fork();
        locble::Rng link_rng = rng.fork();
        locble::Rng rx_rng = rng.fork();

        const ble::Advertiser advertiser(beacon.id, beacon.profile);
        const auto txs = advertiser.transmissions(0.0, out.duration_s, adv_rng);
        const auto reports = scanner.receive(txs, scan_rng);

        // Gamma at 1 m: the beacon's calibrated measured power (what the
        // manufacturer programmed into the frame after antenna losses) plus
        // per-unit calibration spread — so the frame field is an unbiased
        // but imperfect prior for the true 1 m RSSI.
        const double gamma = beacon.profile.measured_power_dbm +
                             link_rng.gaussian(0.0, 1.2);
        channel::LinkSimulator link(live_site, gamma, shadowing, link_rng.fork());

        locble::TimeSeries rss;
        rss.reserve(reports.size());
        for (const auto& rep : reports) {
            const locble::Vec2 tx_pos = beacon.motion
                                            ? beacon.motion->pose_at(rep.t).position
                                            : beacon.position;
            // Hand micro-motion: a held phone wobbles a centimetre or two
            // even when the user stands still, so fades never freeze.
            locble::Vec2 rx_pos = observer.pose_at(rep.t).position;
            rx_pos += {rx_rng.gaussian(0.0, 0.01), rx_rng.gaussian(0.0, 0.01)};
            double rssi = link.rssi(tx_pos, rx_pos, rep.t, rep.channel);
            // Per-packet transmit wobble.
            rssi += rx_rng.gaussian(0.0, beacon.profile.tx_power_jitter_db);
            rssi = channel::apply_receiver(rssi, cfg_.scanner.receiver, rx_rng);
            rss.push_back({rep.t, rssi});
        }
        out.rss[beacon.id] = std::move(rss);

        if (beacon.motion) {
            locble::Rng target_imu_rng = rng.fork();
            out.target_imu[beacon.id] =
                imu::ImuSynthesizer(cfg_.imu).synthesize(*beacon.motion, target_imu_rng);
        }
    }
    return out;
}

double initial_mag_heading(const imu::ImuTrace& imu) {
    if (imu.mag_heading.empty())
        throw std::invalid_argument("initial_mag_heading: empty magnetometer stream");
    const double t0 = imu.mag_heading.front().t;
    return motion::mean_heading(imu.mag_heading, t0, t0 + 0.5);
}

}  // namespace locble::sim
