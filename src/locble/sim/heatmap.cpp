#include "locble/sim/heatmap.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "locble/channel/fading.hpp"

namespace locble::sim {

double RssiHeatmap::coverage(double floor_dbm) const {
    if (rssi_dbm.empty()) return 0.0;
    std::size_t above = 0;
    for (double v : rssi_dbm)
        if (v >= floor_dbm) ++above;
    return static_cast<double>(above) / static_cast<double>(rssi_dbm.size());
}

std::string RssiHeatmap::ascii() const {
    static const char* kRamp = " .:-=+*#%@";
    double lo = 1e300, hi = -1e300;
    for (double v : rssi_dbm) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    std::string out;
    out.reserve((cols + 1) * rows);
    for (std::size_t r = rows; r-- > 0;) {  // north up
        for (std::size_t c = 0; c < cols; ++c) {
            const double v = at(c, r);
            const double f = hi > lo ? (v - lo) / (hi - lo) : 0.0;
            out += kRamp[static_cast<std::size_t>(f * 9.0)];
        }
        out += '\n';
    }
    return out;
}

RssiHeatmap rssi_heatmap(const channel::SiteModel& site, const locble::Vec2& beacon,
                         double gamma_dbm, double cell_m, locble::Rng& rng) {
    if (cell_m <= 0.0) throw std::invalid_argument("rssi_heatmap: cell size <= 0");
    RssiHeatmap map;
    map.cell_m = cell_m;
    map.cols = static_cast<std::size_t>(std::ceil(site.width_m / cell_m));
    map.rows = static_cast<std::size_t>(std::ceil(site.height_m / cell_m));
    map.rssi_dbm.resize(map.cols * map.rows);

    const channel::ShadowingField field(
        channel::params_for(channel::PropagationClass::los).shadowing_decorrelation_m,
        rng.fork());

    for (std::size_t r = 0; r < map.rows; ++r) {
        for (std::size_t c = 0; c < map.cols; ++c) {
            const locble::Vec2 p = map.center(c, r);
            const auto blockage =
                channel::classify_path(p, beacon, 0.0, site.walls, site.blockers);
            const auto params = channel::params_for(blockage.propagation);
            const channel::LogDistanceModel model{gamma_dbm, params.exponent};
            double v = model.rssi_at(locble::Vec2::distance(p, beacon));
            v -= blockage.total_attenuation_db;
            v += field.link_shadow_db(beacon, p,
                                      params.shadowing_sigma_db * site.shadowing_scale);
            map.rssi_dbm[r * map.cols + c] = v;
        }
    }
    return map;
}

}  // namespace locble::sim
