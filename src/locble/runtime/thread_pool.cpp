#include "locble/runtime/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>

#include "locble/obs/obs.hpp"

namespace locble::runtime {

unsigned ThreadPool::resolve_threads(unsigned requested) {
    if (requested > 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads) {
    const unsigned n = resolve_threads(threads);
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
    std::packaged_task<void()> packaged(std::move(task));
    std::future<void> future = packaged.get_future();
    {
        const std::lock_guard lock(mutex_);
        queue_.push_back(std::move(packaged));
        // Scheduling-dependent by nature, so never part of bench JSON.
        LOCBLE_GAUGE_MAX_ND("runtime.pool.queue_depth", queue_.size());
    }
    cv_.notify_one();
    return future;
}

void ThreadPool::run_indexed(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
    if (count == 0) return;
    if (size() == 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i) fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::size_t error_index = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;

    const auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count) return;
            try {
                fn(i);
            } catch (...) {
                const std::lock_guard lock(error_mutex);
                if (i < error_index) {
                    error_index = i;
                    error = std::current_exception();
                }
                next.store(count, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::future<void>> done;
    const std::size_t n = std::min<std::size_t>(size(), count);
    done.reserve(n);
    for (std::size_t i = 0; i < n; ++i) done.push_back(submit(worker));
    for (auto& f : done) f.get();
    if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
    std::uint64_t tasks_run = 0;
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) break;  // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();  // exceptions land in the task's future
        ++tasks_run;
        LOCBLE_COUNT_ND("runtime.pool.tasks", 1);
    }
    // Per-worker distribution, flushed once at pool teardown (snapshots
    // taken while the pool is alive only see the running total above).
    LOCBLE_HISTOGRAM_ND("runtime.pool.tasks_per_worker", tasks_run, 1.0, 2.0, 4.0, 8.0,
                        16.0, 32.0, 64.0, 128.0, 256.0, 512.0);
}

}  // namespace locble::runtime
