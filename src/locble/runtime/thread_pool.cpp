#include "locble/runtime/thread_pool.hpp"

#include "locble/obs/obs.hpp"

namespace locble::runtime {

unsigned ThreadPool::resolve_threads(unsigned requested) {
    if (requested > 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads) {
    const unsigned n = resolve_threads(threads);
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
    std::packaged_task<void()> packaged(std::move(task));
    std::future<void> future = packaged.get_future();
    {
        const std::lock_guard lock(mutex_);
        queue_.push_back(std::move(packaged));
        // Scheduling-dependent by nature, so never part of bench JSON.
        LOCBLE_GAUGE_MAX_ND("runtime.pool.queue_depth", queue_.size());
    }
    cv_.notify_one();
    return future;
}

void ThreadPool::worker_loop() {
    std::uint64_t tasks_run = 0;
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) break;  // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();  // exceptions land in the task's future
        ++tasks_run;
        LOCBLE_COUNT_ND("runtime.pool.tasks", 1);
    }
    // Per-worker distribution, flushed once at pool teardown (snapshots
    // taken while the pool is alive only see the running total above).
    LOCBLE_HISTOGRAM_ND("runtime.pool.tasks_per_worker", tasks_run, 1.0, 2.0, 4.0, 8.0,
                        16.0, 32.0, 64.0, 128.0, 256.0, 512.0);
}

}  // namespace locble::runtime
