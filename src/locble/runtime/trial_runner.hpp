#pragma once

#include <cstdint>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "locble/common/rng.hpp"
#include "locble/obs/obs.hpp"
#include "locble/runtime/thread_pool.hpp"

namespace locble::runtime {

/// How a batch of Monte-Carlo trials should execute.
struct TrialPlan {
    int trials{0};
    std::uint64_t seed{1};  ///< master seed; trial t runs on Rng::for_stream(seed, t)
    unsigned threads{0};    ///< 0 = all hardware threads
};

/// Deterministic parallel scheduler for independent Monte-Carlo trials.
///
/// Each trial t receives its own Rng seeded with
/// `Rng::split_seed(master_seed, t)` and writes its result into slot t of
/// the output vector, so the returned vector is bit-identical whatever the
/// thread count (including 1) and whatever order the trials actually ran
/// in. Trials are handed out through a shared atomic counter — effectively
/// dynamic scheduling, which keeps cores busy when trial costs vary.
///
/// The first exception thrown by a trial (lowest trial index wins, for
/// reproducible failures) cancels the remaining unstarted trials and
/// rethrows from run().
class TrialRunner {
public:
    /// `threads == 0` selects the hardware concurrency.
    explicit TrialRunner(unsigned threads = 0)
        : pool_(ThreadPool::resolve_threads(threads)) {}

    unsigned threads() const { return pool_.size(); }

    /// Run `fn(trial_index, rng)` for trial_index in [0, trials), returning
    /// the results ordered by trial index.
    template <class Fn>
    auto run(int trials, std::uint64_t seed, Fn&& fn)
        -> std::vector<std::invoke_result_t<Fn&, int, locble::Rng&>> {
        using T = std::invoke_result_t<Fn&, int, locble::Rng&>;
        static_assert(!std::is_void_v<T>,
                      "trial functions must return their result");
        if (trials <= 0) return {};
        LOCBLE_SPAN("runtime.run_trials");
        LOCBLE_COUNT("runtime.trials", trials);

        std::vector<std::optional<T>> slots(static_cast<std::size_t>(trials));
        // Scheduling (dynamic index hand-out, barrier, first-exception-by-
        // index) is the pool's run_indexed primitive; the trial layer only
        // adds the per-trial seed stream and the ordered result slots.
        pool_.run_indexed(static_cast<std::size_t>(trials), [&](std::size_t t) {
            LOCBLE_SPAN("trial");
            locble::Rng rng = locble::Rng::for_stream(seed, static_cast<std::uint64_t>(t));
            slots[t].emplace(fn(static_cast<int>(t), rng));
        });

        std::vector<T> out;
        out.reserve(static_cast<std::size_t>(trials));
        for (auto& slot : slots) out.push_back(std::move(*slot));
        return out;
    }

    /// Plan-based overload.
    template <class Fn>
    auto run(const TrialPlan& plan, Fn&& fn) {
        return run(plan.trials, plan.seed, std::forward<Fn>(fn));
    }

private:
    ThreadPool pool_;
};

}  // namespace locble::runtime
