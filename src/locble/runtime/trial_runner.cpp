#include "locble/runtime/trial_runner.hpp"

#include <cstdlib>
#include <string>

namespace locble::runtime {

unsigned default_thread_count() {
    // LOCBLE_THREADS overrides the hardware default; benches and tools pick
    // this up so CI can pin thread counts without editing command lines.
    if (const char* env = std::getenv("LOCBLE_THREADS")) {
        try {
            const int n = std::stoi(env);
            if (n > 0) return static_cast<unsigned>(n);
        } catch (...) {
            // fall through to the hardware default on malformed input
        }
    }
    return ThreadPool::resolve_threads(0);
}

}  // namespace locble::runtime
