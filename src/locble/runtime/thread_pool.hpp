#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace locble::runtime {

/// Fixed-size thread pool used by the trial runner and the bench harness.
///
/// Deliberately simple — one shared FIFO queue, no work stealing — because
/// the workloads it serves (Monte-Carlo trials of whole measurement walks)
/// are coarse enough that queue contention is irrelevant, and a single queue
/// keeps the execution order easy to reason about. Exceptions thrown by a
/// task are captured in the task's future and rethrow at `get()`.
class ThreadPool {
public:
    /// `threads == 0` selects the hardware concurrency (at least 1).
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /// Enqueue a task; the future resolves when it has run (or rethrows the
    /// task's exception).
    std::future<void> submit(std::function<void()> task);

    /// Deterministic indexed fan-out with a barrier: run `fn(i)` for every
    /// i in [0, count), handing indices to min(size(), count) workers
    /// through a shared atomic counter (dynamic scheduling), and return
    /// only after all of them finished. With a single worker (or a single
    /// index) the loop runs inline on the calling thread.
    ///
    /// This is the scheduling primitive behind both the Monte-Carlo
    /// TrialRunner and the locble::serve epoch scheduler: as long as the
    /// work of distinct indices touches disjoint state, the result is
    /// bit-identical whatever the thread count or execution order.
    ///
    /// The first exception by *index* (not by completion time) cancels the
    /// remaining unstarted indices and rethrows from run_indexed(), so
    /// failures reproduce identically across thread counts too.
    void run_indexed(std::size_t count, const std::function<void(std::size_t)>& fn);

    /// Resolve a user-facing thread-count request: 0 means "all hardware
    /// threads", anything else is taken literally (minimum 1).
    static unsigned resolve_threads(unsigned requested);

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::packaged_task<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_{false};
};

}  // namespace locble::runtime
