#include "locble/runtime/bench_report.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "locble/common/cdf.hpp"
#include "locble/obs/quantile.hpp"

namespace locble::runtime {

namespace {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string json_number(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

}  // namespace

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void BenchReport::set_run(int trials, unsigned threads, std::uint64_t seed) {
    trials_ = trials;
    threads_ = threads;
    seed_ = seed;
}

void BenchReport::add_scalar(const std::string& key, double value) {
    metrics_.emplace_back(key, Value(value));
}

void BenchReport::add_text(const std::string& key, const std::string& value) {
    metrics_.emplace_back(key, Value(value));
}

void BenchReport::add_summary(const std::string& key, std::span<const double> samples) {
    if (samples.empty()) {
        metrics_.emplace_back(key, Value(Summary{0, 0.0, 0.0, 0.0, 0.0, 0.0}));
        return;
    }
    const EmpiricalCdf cdf(samples);
    metrics_.emplace_back(key, Value(Summary{cdf.count(), cdf.mean(), cdf.median(),
                                             cdf.percentile(0.9), cdf.min(),
                                             cdf.max()}));
}

void BenchReport::add_obs_counter(const std::string& key, std::uint64_t value) {
    obs_.emplace_back(key, ObsValue(value));
}

void BenchReport::add_obs_gauge(const std::string& key, double value) {
    obs_.emplace_back(key, ObsValue(value));
}

void BenchReport::add_obs_histogram(const std::string& key,
                                    std::vector<std::uint64_t> buckets,
                                    std::vector<double> bounds) {
    obs_.emplace_back(key, ObsValue(ObsHistogram{std::move(buckets), std::move(bounds)}));
}

void BenchReport::add_obs_quantile(const std::string& key,
                                   std::vector<std::uint64_t> buckets,
                                   double upper_bound) {
    obs_.emplace_back(key, ObsValue(ObsQuantile{std::move(buckets), upper_bound}));
}

std::string BenchReport::to_json() const {
    std::string out = "{\n";
    out += "  \"schema_version\": " + std::to_string(kBenchReportSchemaVersion) + ",\n";
    out += "  \"bench\": \"" + json_escape(name_) + "\",\n";
    out += "  \"trials\": " + std::to_string(trials_) + ",\n";
    out += "  \"threads\": " + std::to_string(threads_) + ",\n";
    out += "  \"seed\": " + std::to_string(seed_) + ",\n";
    out += "  \"wall_seconds\": " + json_number(wall_seconds_) + ",\n";
    out += "  \"metrics\": {\n";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
        const auto& [key, value] = metrics_[i];
        out += "    \"" + json_escape(key) + "\": ";
        if (const auto* d = std::get_if<double>(&value)) {
            out += json_number(*d);
        } else if (const auto* s = std::get_if<std::string>(&value)) {
            out += "\"" + json_escape(*s) + "\"";
        } else {
            const auto& sm = std::get<Summary>(value);
            out += "{\"count\": " + std::to_string(sm.count);
            out += ", \"mean\": " + json_number(sm.mean);
            out += ", \"median\": " + json_number(sm.median);
            out += ", \"p90\": " + json_number(sm.p90);
            out += ", \"min\": " + json_number(sm.min);
            out += ", \"max\": " + json_number(sm.max) + "}";
        }
        out += i + 1 < metrics_.size() ? ",\n" : "\n";
    }
    out += "  }";
    if (!obs_.empty()) {
        out += ",\n  \"obs\": {\n";
        for (std::size_t i = 0; i < obs_.size(); ++i) {
            const auto& [key, value] = obs_[i];
            out += "    \"" + json_escape(key) + "\": ";
            if (const auto* c = std::get_if<std::uint64_t>(&value)) {
                out += std::to_string(*c);
            } else if (const auto* g = std::get_if<double>(&value)) {
                out += json_number(*g);
            } else if (const auto* h = std::get_if<ObsHistogram>(&value)) {
                std::uint64_t total = 0;
                for (const std::uint64_t b : h->buckets) total += b;
                out += "{\"count\": " + std::to_string(total);
                out += ", \"buckets\": [";
                for (std::size_t b = 0; b < h->buckets.size(); ++b) {
                    if (b > 0) out += ", ";
                    out += std::to_string(h->buckets[b]);
                }
                out += "], \"bounds\": [";
                for (std::size_t b = 0; b < h->bounds.size(); ++b) {
                    if (b > 0) out += ", ";
                    out += json_number(h->bounds[b]);
                }
                out += "]}";
            } else {
                const auto& q = std::get<ObsQuantile>(value);
                std::uint64_t total = 0;
                for (const std::uint64_t b : q.buckets) total += b;
                out += "{\"count\": " + std::to_string(total);
                out += ", \"upper_bound\": " + json_number(q.upper_bound);
                out += ", \"p50\": " +
                       json_number(obs::sketch_quantile(q.buckets, q.upper_bound, 0.50));
                out += ", \"p95\": " +
                       json_number(obs::sketch_quantile(q.buckets, q.upper_bound, 0.95));
                out += ", \"p99\": " +
                       json_number(obs::sketch_quantile(q.buckets, q.upper_bound, 0.99));
                out += ", \"buckets\": [";
                for (std::size_t b = 0; b < q.buckets.size(); ++b) {
                    if (b > 0) out += ", ";
                    out += std::to_string(q.buckets[b]);
                }
                out += "]}";
            }
            out += i + 1 < obs_.size() ? ",\n" : "\n";
        }
        out += "  }";
    }
    out += "\n}\n";
    return out;
}

std::string BenchReport::write(const std::string& dir) const {
    const std::string path =
        (dir.empty() || dir == "." ? std::string() : dir + "/") + "BENCH_" + name_ +
        ".json";
    std::ofstream file(path, std::ios::trunc);
    if (!file) throw std::runtime_error("BenchReport: cannot write " + path);
    file << to_json();
    return path;
}

}  // namespace locble::runtime
