#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

namespace locble::runtime {

/// Overridable via LOCBLE_THREADS; defined in trial_runner.cpp.
unsigned default_thread_count();

/// Version of the BENCH_*.json layout. Bump when the serialized shape
/// changes (new/renamed top-level keys, different metric encoding) so CI
/// and downstream tooling can reject reports they don't understand.
///   1  implicit — reports without a "schema_version" field
///   2  adds the explicit "schema_version" top-level field
inline constexpr int kBenchReportSchemaVersion = 2;

/// Machine-readable result sink for one bench binary.
///
/// Collects scalar metrics and sample summaries in insertion order and
/// serializes them as `BENCH_<name>.json` next to the human-readable text
/// output, so that successive runs leave a regression-trackable trajectory.
/// Doubles are printed with %.17g — two runs that computed bit-identical
/// values emit byte-identical JSON.
class BenchReport {
public:
    explicit BenchReport(std::string name);

    const std::string& name() const { return name_; }

    /// Execution parameters of the run (threads/trials/seed + wall time).
    void set_run(int trials, unsigned threads, std::uint64_t seed);
    void set_wall_seconds(double seconds) { wall_seconds_ = seconds; }

    /// One scalar metric (mean error, speedup, match rate, ...).
    void add_scalar(const std::string& key, double value);
    /// One free-text annotation (environment name, shape-check verdict, ...).
    void add_text(const std::string& key, const std::string& value);
    /// Full summary of a sample set: count/mean/median/p90/min/max.
    void add_summary(const std::string& key, std::span<const double> samples);

    /// Stage-level observability metrics (locble::obs snapshot), serialized
    /// as a separate "obs" JSON section after "metrics". Only merge-order-
    /// invariant values belong here — u64 counters/bucket counts and max
    /// gauges — so the section stays byte-identical across thread counts
    /// (float sums are NOT accepted: their shard merge order varies).
    /// The section is omitted entirely while empty, which keeps obs-disabled
    /// reports byte-identical to the pre-obs format.
    void add_obs_counter(const std::string& key, std::uint64_t value);
    void add_obs_gauge(const std::string& key, double value);
    void add_obs_histogram(const std::string& key, std::vector<std::uint64_t> buckets,
                           std::vector<double> bounds);
    /// Quantile-sketch metric (locble::obs exact fixed-resolution sketch):
    /// serialized as count, upper_bound, derived p50/p95/p99 — pure
    /// functions of the u64 buckets, hence byte-identical across thread
    /// counts — plus the raw buckets.
    void add_obs_quantile(const std::string& key, std::vector<std::uint64_t> buckets,
                          double upper_bound);

    std::string to_json() const;

    /// Write BENCH_<name>.json into `dir`; returns the path written.
    /// Throws std::runtime_error when the file cannot be opened.
    std::string write(const std::string& dir = ".") const;

private:
    struct Summary {
        std::size_t count;
        double mean, median, p90, min, max;
    };
    using Value = std::variant<double, std::string, Summary>;

    struct ObsHistogram {
        std::vector<std::uint64_t> buckets;
        std::vector<double> bounds;
    };
    struct ObsQuantile {
        std::vector<std::uint64_t> buckets;
        double upper_bound;
    };
    using ObsValue = std::variant<std::uint64_t, double, ObsHistogram, ObsQuantile>;

    std::string name_;
    int trials_{0};
    unsigned threads_{0};
    std::uint64_t seed_{0};
    double wall_seconds_{0.0};
    std::vector<std::pair<std::string, Value>> metrics_;
    std::vector<std::pair<std::string, ObsValue>> obs_;
};

}  // namespace locble::runtime
