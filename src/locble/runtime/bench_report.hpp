#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

namespace locble::runtime {

/// Overridable via LOCBLE_THREADS; defined in trial_runner.cpp.
unsigned default_thread_count();

/// Machine-readable result sink for one bench binary.
///
/// Collects scalar metrics and sample summaries in insertion order and
/// serializes them as `BENCH_<name>.json` next to the human-readable text
/// output, so that successive runs leave a regression-trackable trajectory.
/// Doubles are printed with %.17g — two runs that computed bit-identical
/// values emit byte-identical JSON.
class BenchReport {
public:
    explicit BenchReport(std::string name);

    const std::string& name() const { return name_; }

    /// Execution parameters of the run (threads/trials/seed + wall time).
    void set_run(int trials, unsigned threads, std::uint64_t seed);
    void set_wall_seconds(double seconds) { wall_seconds_ = seconds; }

    /// One scalar metric (mean error, speedup, match rate, ...).
    void add_scalar(const std::string& key, double value);
    /// One free-text annotation (environment name, shape-check verdict, ...).
    void add_text(const std::string& key, const std::string& value);
    /// Full summary of a sample set: count/mean/median/p90/min/max.
    void add_summary(const std::string& key, std::span<const double> samples);

    std::string to_json() const;

    /// Write BENCH_<name>.json into `dir`; returns the path written.
    /// Throws std::runtime_error when the file cannot be opened.
    std::string write(const std::string& dir = ".") const;

private:
    struct Summary {
        std::size_t count;
        double mean, median, p90, min, max;
    };
    using Value = std::variant<double, std::string, Summary>;

    std::string name_;
    int trials_{0};
    unsigned threads_{0};
    std::uint64_t seed_{0};
    double wall_seconds_{0.0};
    std::vector<std::pair<std::string, Value>> metrics_;
};

}  // namespace locble::runtime
