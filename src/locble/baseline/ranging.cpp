#include "locble/baseline/ranging.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace locble::baseline {

const char* to_string(ProximityZone z) {
    switch (z) {
        case ProximityZone::unknown: return "unknown";
        case ProximityZone::immediate: return "immediate";
        case ProximityZone::near: return "near";
        case ProximityZone::far: return "far";
    }
    return "?";
}

double FixedModelRanger::mean_recent(const locble::TimeSeries& rss) const {
    if (rss.empty()) throw std::invalid_argument("FixedModelRanger: empty series");
    const std::size_t n = std::min(cfg_.average_window, rss.size());
    double s = 0.0;
    for (std::size_t i = rss.size() - n; i < rss.size(); ++i) s += rss[i].value;
    return s / static_cast<double>(n);
}

double FixedModelRanger::estimate_distance(const locble::TimeSeries& rss) const {
    const double mean = mean_recent(rss);
    const double d =
        std::pow(10.0, (cfg_.measured_power_dbm - mean) / (10.0 * cfg_.exponent));
    return std::min(d, cfg_.max_range_m);
}

double FixedModelRanger::estimate_distance_curvefit(const locble::TimeSeries& rss) const {
    const double mean = mean_recent(rss);
    const double ratio = mean / cfg_.measured_power_dbm;
    // Android Beacon Library empirical model (Nexus 4 calibration).
    if (ratio < 1.0) return std::pow(ratio, 10.0);
    return 0.89976 * std::pow(ratio, 7.7095) + 0.111;
}

ProximityZone FixedModelRanger::zone_for(double distance_m) {
    if (!(distance_m >= 0.0) || !std::isfinite(distance_m)) return ProximityZone::unknown;
    if (distance_m < 0.5) return ProximityZone::immediate;
    if (distance_m < 4.0) return ProximityZone::near;
    return ProximityZone::far;
}

}  // namespace locble::baseline
