#pragma once

#include <string>

#include "locble/common/timeseries.hpp"

namespace locble::baseline {

/// iBeacon-style proximity zones — the 1-D, four-zone output that existing
/// beacon apps expose and that LocBLE's fine-grained estimation replaces
/// (Sec. 1, footnote 1).
enum class ProximityZone { unknown, immediate, near, far };

const char* to_string(ProximityZone z);

/// Fixed-model RSS ranging — our stand-in for the Dartle ranging app
/// (Sec. 7.4.1), the strongest available baseline: average the recent RSS
/// and invert a *fixed* calibrated path-loss curve. It neither estimates
/// the environment's exponent nor fuses motion, which is exactly what
/// LocBLE's comparison exercises.
class FixedModelRanger {
public:
    struct Config {
        double measured_power_dbm{-59.0};  ///< advertised 1 m RSSI
        double exponent{2.2};              ///< fixed assumed path loss
        std::size_t average_window{10};    ///< samples averaged per estimate
        /// Estimates are clamped here: BLE is receivable to ~15 m indoors
        /// (Sec. 2.2), so a ranging app never reports beyond its radio range.
        double max_range_m{20.0};
    };

    FixedModelRanger() : FixedModelRanger(Config{}) {}
    explicit FixedModelRanger(const Config& cfg) : cfg_(cfg) {}

    /// Distance estimate from the most recent samples of `rss`.
    /// Throws std::invalid_argument when `rss` is empty.
    double estimate_distance(const locble::TimeSeries& rss) const;

    /// The Android-Beacon-Library style curve-fit ranging ("accuracy"),
    /// kept as the second industry-standard reference curve.
    double estimate_distance_curvefit(const locble::TimeSeries& rss) const;

    /// Zone from a distance estimate (iBeacon convention: immediate < 0.5 m,
    /// near < 4 m, far beyond).
    static ProximityZone zone_for(double distance_m);

    const Config& config() const { return cfg_; }

private:
    double mean_recent(const locble::TimeSeries& rss) const;
    Config cfg_;
};

}  // namespace locble::baseline
