#pragma once

#include <span>

#include "locble/core/dtw.hpp"

namespace locble::baseline {

/// Whole-sequence DTW matching with no lower-bound gate and no
/// segmentation — the "applying DTW directly to the original sequence"
/// reference LocBLE's segmented matcher is compared against (Sec. 6.1,
/// "at least 2x faster"). Same decision semantics: matched iff the
/// normalized alignment cost passes the threshold.
class NaiveDtwMatcher {
public:
    struct Config {
        double threshold_per_point{0.61};  ///< 6.1 per 10-point segment
    };

    NaiveDtwMatcher() : NaiveDtwMatcher(Config{}) {}
    explicit NaiveDtwMatcher(const Config& cfg) : cfg_(cfg) {}

    bool match(std::span<const double> target, std::span<const double> candidate) const {
        const std::size_t n = std::min(target.size(), candidate.size());
        if (n == 0) return false;
        const double cost = core::dtw_distance(target.subspan(0, n),
                                               candidate.subspan(0, n), 0);
        return cost <= cfg_.threshold_per_point * static_cast<double>(n);
    }

    const Config& config() const { return cfg_; }

private:
    Config cfg_;
};

}  // namespace locble::baseline
