#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace locble {

/// One timestamped scalar sample (time in seconds).
struct Sample {
    double t{0.0};
    double value{0.0};

    constexpr bool operator==(const Sample&) const = default;
};

/// A time-ordered sequence of scalar samples. This is the shape of every
/// sensor stream in the library: RSSI per beacon, accelerometer magnitude,
/// gyroscope rate, magnetic heading.
using TimeSeries = std::vector<Sample>;

/// Extract just the values of a series.
std::vector<double> values_of(const TimeSeries& ts);

/// Extract just the timestamps of a series.
std::vector<double> times_of(const TimeSeries& ts);

/// Linear interpolation of `ts` at time `t`. Clamps to the end values
/// outside the covered interval. Throws std::invalid_argument when empty.
double interpolate(const TimeSeries& ts, double t);

/// Resample `ts` onto a uniform grid of `rate_hz` starting at the first
/// sample's timestamp, by linear interpolation. Throws when `ts` is empty or
/// rate is not positive.
TimeSeries resample(const TimeSeries& ts, double rate_hz);

/// Resample `ts` at the given target timestamps by linear interpolation.
TimeSeries resample_at(const TimeSeries& ts, std::span<const double> target_times);

/// Keep only samples with t in [t0, t1].
TimeSeries slice(const TimeSeries& ts, double t0, double t1);

/// First difference of values: out[i] = v[i+1] - v[i], timestamped at the
/// later sample. Length is ts.size()-1 (empty for fewer than 2 samples).
TimeSeries differentiate(const TimeSeries& ts);

/// Decimate to approximately `rate_hz` by dropping samples (no filtering);
/// models lowering a scanner's sampling frequency as in Sec. 7.6.1, where an
/// idle delay is inserted between consecutive scans.
TimeSeries decimate(const TimeSeries& ts, double rate_hz);

}  // namespace locble
