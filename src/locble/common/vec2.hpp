#pragma once

#include <cmath>

namespace locble {

/// A 2-D point/vector in the observer's coordinate plane (metres).
///
/// LocBLE works in a plane whose origin is the observer's starting point and
/// whose x-axis is the observer's initial walking direction (Sec. 5 of the
/// paper). All geometry in the library uses this type.
struct Vec2 {
    double x{0.0};
    double y{0.0};

    constexpr Vec2() = default;
    constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

    constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
    constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
    constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
    constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
    constexpr Vec2& operator+=(const Vec2& o) {
        x += o.x;
        y += o.y;
        return *this;
    }
    constexpr Vec2& operator-=(const Vec2& o) {
        x -= o.x;
        y -= o.y;
        return *this;
    }
    constexpr Vec2 operator-() const { return {-x, -y}; }

    constexpr bool operator==(const Vec2&) const = default;

    /// Dot product.
    constexpr double dot(const Vec2& o) const { return x * o.x + y * o.y; }
    /// Z-component of the 3-D cross product; >0 when `o` is CCW from *this.
    constexpr double cross(const Vec2& o) const { return x * o.y - y * o.x; }
    /// Euclidean norm.
    double norm() const { return std::hypot(x, y); }
    /// Squared norm (avoids the sqrt when comparing distances).
    constexpr double norm2() const { return x * x + y * y; }
    /// Unit vector in the same direction; returns {0,0} for the zero vector.
    Vec2 normalized() const {
        const double n = norm();
        return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
    }
    /// Angle from +x axis in radians, in (-pi, pi].
    double angle() const { return std::atan2(y, x); }
    /// This vector rotated CCW by `radians`.
    Vec2 rotated(double radians) const {
        const double c = std::cos(radians);
        const double s = std::sin(radians);
        return {c * x - s * y, s * x + c * y};
    }

    /// Euclidean distance between two points.
    static double distance(const Vec2& a, const Vec2& b) { return (a - b).norm(); }
};

constexpr Vec2 operator*(double s, const Vec2& v) { return v * s; }

/// Unit vector at `radians` from the +x axis.
inline Vec2 unit_from_angle(double radians) { return {std::cos(radians), std::sin(radians)}; }

/// Wrap an angle to (-pi, pi].
double wrap_angle(double radians);

/// Smallest signed difference a-b between two angles, in (-pi, pi].
double angle_diff(double a, double b);

}  // namespace locble
