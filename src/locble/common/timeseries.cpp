#include "locble/common/timeseries.hpp"

#include <algorithm>
#include <stdexcept>

namespace locble {

std::vector<double> values_of(const TimeSeries& ts) {
    std::vector<double> out;
    out.reserve(ts.size());
    for (const auto& s : ts) out.push_back(s.value);
    return out;
}

std::vector<double> times_of(const TimeSeries& ts) {
    std::vector<double> out;
    out.reserve(ts.size());
    for (const auto& s : ts) out.push_back(s.t);
    return out;
}

double interpolate(const TimeSeries& ts, double t) {
    if (ts.empty()) throw std::invalid_argument("interpolate: empty series");
    if (t <= ts.front().t) return ts.front().value;
    if (t >= ts.back().t) return ts.back().value;
    const auto it = std::lower_bound(ts.begin(), ts.end(), t,
                                     [](const Sample& s, double tt) { return s.t < tt; });
    const auto& hi = *it;
    const auto& lo = *(it - 1);
    if (hi.t == lo.t) return lo.value;
    const double f = (t - lo.t) / (hi.t - lo.t);
    return lo.value * (1.0 - f) + hi.value * f;
}

TimeSeries resample(const TimeSeries& ts, double rate_hz) {
    if (ts.empty()) throw std::invalid_argument("resample: empty series");
    if (rate_hz <= 0.0) throw std::invalid_argument("resample: rate must be positive");
    TimeSeries out;
    const double dt = 1.0 / rate_hz;
    for (double t = ts.front().t; t <= ts.back().t + 1e-9; t += dt)
        out.push_back({t, interpolate(ts, t)});
    return out;
}

TimeSeries resample_at(const TimeSeries& ts, std::span<const double> target_times) {
    TimeSeries out;
    out.reserve(target_times.size());
    for (double t : target_times) out.push_back({t, interpolate(ts, t)});
    return out;
}

TimeSeries slice(const TimeSeries& ts, double t0, double t1) {
    TimeSeries out;
    for (const auto& s : ts)
        if (s.t >= t0 && s.t <= t1) out.push_back(s);
    return out;
}

TimeSeries differentiate(const TimeSeries& ts) {
    TimeSeries out;
    if (ts.size() < 2) return out;
    out.reserve(ts.size() - 1);
    for (std::size_t i = 1; i < ts.size(); ++i)
        out.push_back({ts[i].t, ts[i].value - ts[i - 1].value});
    return out;
}

TimeSeries decimate(const TimeSeries& ts, double rate_hz) {
    if (rate_hz <= 0.0) throw std::invalid_argument("decimate: rate must be positive");
    TimeSeries out;
    if (ts.empty()) return out;
    // Keep a sample whenever the target-rate clock has ticked since the last
    // kept one; the *average* output rate equals rate_hz even when input
    // timestamps jitter (dropping whole scan events, like inserting an idle
    // delay between scans does).
    const double t0 = ts.front().t;
    std::size_t kept = 0;
    for (const auto& s : ts) {
        if ((s.t - t0) * rate_hz >= static_cast<double>(kept) - 1e-9) {
            out.push_back(s);
            ++kept;
        }
    }
    return out;
}

}  // namespace locble
