#pragma once

#include <cmath>

#include "locble/common/vec2.hpp"

namespace locble {

/// A 3-D point/vector (metres). Used by the Sec. 9.3 extension that lifts
/// LocBLE's estimate into 3-D when the walk carries vertical excitation
/// (stairs, raising the phone).
struct Vec3 {
    double x{0.0};
    double y{0.0};
    double z{0.0};

    constexpr Vec3() = default;
    constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}
    constexpr Vec3(const Vec2& xy, double z_) : x(xy.x), y(xy.y), z(z_) {}

    constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
    constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
    constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
    constexpr Vec3& operator+=(const Vec3& o) {
        x += o.x;
        y += o.y;
        z += o.z;
        return *this;
    }
    constexpr bool operator==(const Vec3&) const = default;

    constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
    constexpr double norm2() const { return x * x + y * y + z * z; }
    double norm() const { return std::sqrt(norm2()); }
    constexpr Vec2 xy() const { return {x, y}; }

    static double distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

}  // namespace locble
