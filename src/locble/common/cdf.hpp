#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace locble {

/// Empirical CDF of a sample set — the presentation format of most of the
/// paper's evaluation figures (Figs. 5, 10(b), 11(b), 13).
class EmpiricalCdf {
public:
    /// Builds the CDF from `samples` (copied and sorted). Throws
    /// std::invalid_argument when empty.
    explicit EmpiricalCdf(std::span<const double> samples);

    /// Fraction of samples <= x, in [0,1].
    double at(double x) const;

    /// Value below which `q` (in [0,1]) of the samples fall; linear
    /// interpolation between order statistics.
    double percentile(double q) const;

    double median() const { return percentile(0.5); }
    double min() const { return sorted_.front(); }
    double max() const { return sorted_.back(); }
    double mean() const;
    std::size_t count() const { return sorted_.size(); }

    /// Evenly spaced (value, cdf) pairs suitable for plotting/printing.
    std::vector<std::pair<double, double>> curve(std::size_t points = 20) const;

private:
    std::vector<double> sorted_;
};

/// Render several named CDFs as an aligned text table of percentiles —
/// the bench binaries use this to print "CDF figures" as rows.
std::string format_cdf_table(
    const std::vector<std::pair<std::string, EmpiricalCdf>>& curves,
    std::span<const double> percentiles);

}  // namespace locble
