#pragma once

#include <cstdint>
#include <random>

namespace locble {

/// Deterministic random source used throughout the simulator.
///
/// All stochastic components (fading, shadowing, IMU noise, trajectory
/// jitter) draw from an explicitly seeded Rng so that every experiment is
/// reproducible run-to-run. Components that need independent streams should
/// fork() a child generator instead of sharing one instance.
class Rng {
public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /// Gaussian sample.
    double gaussian(double mean, double stddev) {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /// Exponential sample with the given mean (mean = 1/lambda).
    double exponential(double mean_value) {
        return std::exponential_distribution<double>(1.0 / mean_value)(engine_);
    }

    /// Bernoulli trial.
    bool chance(double probability) {
        return std::bernoulli_distribution(probability)(engine_);
    }

    /// Rayleigh-distributed sample with scale sigma.
    double rayleigh(double sigma) {
        const double u = uniform(1e-12, 1.0);
        return sigma * std::sqrt(-2.0 * std::log(u));
    }

    /// Derive an independent child generator. The child's stream is a pure
    /// function of this generator's current state, so forking is itself
    /// deterministic.
    Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ull); }

    /// SplitMix64-style seed derivation: hash a (master seed, stream index)
    /// pair into a statistically independent 64-bit seed. Pure function of
    /// its inputs — the foundation of the repo's determinism contract: a
    /// trial's random stream depends only on (master_seed, trial_index),
    /// never on which thread runs it or in what order.
    static std::uint64_t split_seed(std::uint64_t master, std::uint64_t stream) {
        std::uint64_t z = master + (stream + 1) * 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /// Generator for stream `stream` of master seed `master` (see
    /// split_seed). Every parallel trial gets its Rng through this.
    static Rng for_stream(std::uint64_t master, std::uint64_t stream) {
        return Rng(split_seed(master, stream));
    }

    std::mt19937_64& engine() { return engine_; }

private:
    std::mt19937_64 engine_;
};

}  // namespace locble
