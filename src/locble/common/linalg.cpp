#include "locble/common/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace locble {

std::vector<double> solve_linear(Matrix a, std::vector<double> b) {
    const std::size_t n = a.size();
    if (n == 0) throw std::invalid_argument("solve_linear: empty system");
    for (const auto& row : a)
        if (row.size() != n) throw std::invalid_argument("solve_linear: not square");
    if (b.size() != n) throw std::invalid_argument("solve_linear: rhs size mismatch");

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivot.
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r)
            if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
        if (std::abs(a[pivot][col]) < 1e-14)
            throw std::runtime_error("solve_linear: singular matrix");
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);

        for (std::size_t r = col + 1; r < n; ++r) {
            const double f = a[r][col] / a[col][col];
            if (f == 0.0) continue;
            for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
            b[r] -= f * b[col];
        }
    }
    std::vector<double> x(n);
    for (std::size_t i = n; i-- > 0;) {
        double s = b[i];
        for (std::size_t c = i + 1; c < n; ++c) s -= a[i][c] * x[c];
        x[i] = s / a[i][i];
    }
    return x;
}

std::vector<double> least_squares(const Matrix& x, const std::vector<double>& y) {
    const std::size_t n = x.size();
    if (n == 0) throw std::invalid_argument("least_squares: empty system");
    const std::size_t m = x.front().size();
    if (m == 0 || n < m)
        throw std::invalid_argument("least_squares: need at least m rows");
    for (const auto& row : x)
        if (row.size() != m) throw std::invalid_argument("least_squares: ragged matrix");
    if (y.size() != n) throw std::invalid_argument("least_squares: rhs size mismatch");

    // Column scaling for conditioning.
    std::vector<double> scale(m, 0.0);
    for (const auto& row : x)
        for (std::size_t j = 0; j < m; ++j) scale[j] = std::max(scale[j], std::abs(row[j]));
    for (auto& s : scale)
        if (s < 1e-300) s = 1.0;

    Matrix ata(m, std::vector<double>(m, 0.0));
    std::vector<double> atb(m, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
            const double xij = x[i][j] / scale[j];
            atb[j] += xij * y[i];
            for (std::size_t k = j; k < m; ++k)
                ata[j][k] += xij * (x[i][k] / scale[k]);
        }
    }
    for (std::size_t j = 0; j < m; ++j)
        for (std::size_t k = 0; k < j; ++k) ata[j][k] = ata[k][j];

    std::vector<double> beta;
    try {
        beta = solve_linear(std::move(ata), std::move(atb));
    } catch (const std::runtime_error&) {
        throw std::runtime_error("least_squares: rank-deficient system");
    }
    for (std::size_t j = 0; j < m; ++j) beta[j] /= scale[j];
    return beta;
}

bool solve_linear_flat(double* a, double* b, double* x, std::size_t n) noexcept {
    if (n == 0) return false;
    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivot (same choice rule and threshold as solve_linear).
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r)
            if (std::abs(a[r * n + col]) > std::abs(a[pivot * n + col])) pivot = r;
        if (std::abs(a[pivot * n + col]) < 1e-14) return false;
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c) std::swap(a[col * n + c], a[pivot * n + c]);
            std::swap(b[col], b[pivot]);
        }
        for (std::size_t r = col + 1; r < n; ++r) {
            const double f = a[r * n + col] / a[col * n + col];
            if (f == 0.0) continue;
            for (std::size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
            b[r] -= f * b[col];
        }
    }
    for (std::size_t i = n; i-- > 0;) {
        double s = b[i];
        for (std::size_t c = i + 1; c < n; ++c) s -= a[i * n + c] * x[c];
        x[i] = s / a[i * n + i];
    }
    return true;
}

bool least_squares_flat(const double* x, const double* y, std::size_t n,
                        std::size_t m, double* beta, double* ata, double* atb,
                        double* scale) noexcept {
    if (n == 0 || m == 0 || n < m) return false;

    // Column scaling for conditioning (max is order-independent, so the
    // scales match least_squares exactly).
    for (std::size_t j = 0; j < m; ++j) scale[j] = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < m; ++j)
            scale[j] = std::max(scale[j], std::abs(x[i * m + j]));
    for (std::size_t j = 0; j < m; ++j)
        if (scale[j] < 1e-300) scale[j] = 1.0;

    for (std::size_t j = 0; j < m * m; ++j) ata[j] = 0.0;
    for (std::size_t j = 0; j < m; ++j) atb[j] = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
            const double xij = x[i * m + j] / scale[j];
            atb[j] += xij * y[i];
            for (std::size_t k = j; k < m; ++k)
                ata[j * m + k] += xij * (x[i * m + k] / scale[k]);
        }
    }
    for (std::size_t j = 0; j < m; ++j)
        for (std::size_t k = 0; k < j; ++k) ata[j * m + k] = ata[k * m + j];

    if (!solve_linear_flat(ata, atb, beta, m)) return false;
    for (std::size_t j = 0; j < m; ++j) beta[j] /= scale[j];
    return true;
}

}  // namespace locble
