#pragma once

#include <cstddef>
#include <vector>

namespace locble {

/// Dense row-major matrix for the small systems LocBLE solves (the
/// elliptical regression has 4 unknowns).
using Matrix = std::vector<std::vector<double>>;

/// Solve the square system `a x = b` by Gaussian elimination with partial
/// pivoting. Throws std::invalid_argument on shape mismatch and
/// std::runtime_error when `a` is singular to working precision.
std::vector<double> solve_linear(Matrix a, std::vector<double> b);

/// Least-squares solution of `x beta ~= y` via the normal equations
/// (x is n-by-m with n >= m). The columns are internally scaled to unit
/// infinity-norm before solving to keep the normal equations conditioned.
/// Throws std::invalid_argument on shape problems and std::runtime_error on
/// a rank-deficient system.
std::vector<double> least_squares(const Matrix& x, const std::vector<double>& y);

/// Allocation-free twin of solve_linear for hot paths: Gaussian elimination
/// with partial pivoting on flat row-major storage. `a` (n x n) and `b`
/// (n) are destroyed; the solution is written to `x`. The arithmetic — the
/// pivot choice, the elimination order and the 1e-14 singularity threshold —
/// is identical to solve_linear, so results are bit-identical. Returns
/// false instead of throwing when the matrix is singular.
bool solve_linear_flat(double* a, double* b, double* x, std::size_t n) noexcept;

/// Allocation-free twin of least_squares on flat row-major storage
/// (`x` is n rows by m cols, `y` has n entries). Caller supplies the
/// normal-equation scratch: `ata` (m*m), `atb` (m) and `scale` (m).
/// Arithmetic is identical to least_squares (same column scaling, same
/// accumulation order), so `beta` is bit-identical. Returns false when the
/// system is rank deficient or n < m.
bool least_squares_flat(const double* x, const double* y, std::size_t n,
                        std::size_t m, double* beta, double* ata, double* atb,
                        double* scale) noexcept;

}  // namespace locble
