#pragma once

#include <vector>

namespace locble {

/// Dense row-major matrix for the small systems LocBLE solves (the
/// elliptical regression has 4 unknowns).
using Matrix = std::vector<std::vector<double>>;

/// Solve the square system `a x = b` by Gaussian elimination with partial
/// pivoting. Throws std::invalid_argument on shape mismatch and
/// std::runtime_error when `a` is singular to working precision.
std::vector<double> solve_linear(Matrix a, std::vector<double> b);

/// Least-squares solution of `x beta ~= y` via the normal equations
/// (x is n-by-m with n >= m). The columns are internally scaled to unit
/// infinity-norm before solving to keep the normal equations conditioned.
/// Throws std::invalid_argument on shape problems and std::runtime_error on
/// a rank-deficient system.
std::vector<double> least_squares(const Matrix& x, const std::vector<double>& y);

}  // namespace locble
