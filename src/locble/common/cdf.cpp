#include "locble/common/cdf.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "locble/common/stats.hpp"

namespace locble {

EmpiricalCdf::EmpiricalCdf(std::span<const double> samples)
    : sorted_(samples.begin(), samples.end()) {
    if (sorted_.empty()) throw std::invalid_argument("EmpiricalCdf: empty sample set");
    std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::percentile(double q) const { return quantile(sorted_, q); }

double EmpiricalCdf::mean() const { return locble::mean(sorted_); }

std::vector<std::pair<double, double>> EmpiricalCdf::curve(std::size_t points) const {
    std::vector<std::pair<double, double>> out;
    if (points < 2) points = 2;
    out.reserve(points);
    const double lo = sorted_.front();
    const double hi = sorted_.back();
    for (std::size_t i = 0; i < points; ++i) {
        const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
        out.emplace_back(x, at(x));
    }
    return out;
}

std::string format_cdf_table(
    const std::vector<std::pair<std::string, EmpiricalCdf>>& curves,
    std::span<const double> percentiles) {
    std::ostringstream os;
    os << "| series | n |";
    for (double p : percentiles) os << " p" << static_cast<int>(std::lround(p * 100)) << " |";
    os << " mean |\n";
    os << "|---|---|";
    for (std::size_t i = 0; i < percentiles.size(); ++i) os << "---|";
    os << "---|\n";
    os.setf(std::ios::fixed);
    os.precision(2);
    for (const auto& [name, cdf] : curves) {
        os << "| " << name << " | " << cdf.count() << " |";
        for (double p : percentiles) os << " " << cdf.percentile(p) << " |";
        os << " " << cdf.mean() << " |\n";
    }
    return os.str();
}

}  // namespace locble
