#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace locble {

/// Summary statistics of one window of samples.
///
/// These are exactly the statistics LocBLE's EnvAware feature extraction
/// uses (Sec. 4.1): central moments plus the five-number summary.
struct WindowSummary {
    std::size_t count{0};
    double mean{0.0};
    double variance{0.0};  ///< population variance
    double stddev{0.0};
    double skewness{0.0};  ///< 0 when variance is ~0
    double kurtosis{0.0};  ///< excess kurtosis; 0 when variance is ~0
    double min{0.0};
    double q1{0.0};      ///< first quartile (linear interpolation)
    double median{0.0};
    double q3{0.0};      ///< third quartile
    double max{0.0};
};

/// Compute the full summary of `values`. Throws std::invalid_argument when
/// `values` is empty.
WindowSummary summarize(std::span<const double> values);

/// Quantile of `values` at `q` in [0,1] using linear interpolation between
/// order statistics (the "linear"/type-7 convention, matching numpy).
/// Throws std::invalid_argument when `values` is empty or q outside [0,1].
double quantile(std::span<const double> values, double q);

/// Arithmetic mean. Throws std::invalid_argument when empty.
double mean(std::span<const double> values);

/// Population variance. Throws std::invalid_argument when empty.
double variance(std::span<const double> values);

/// Incremental single-pass statistics (Welford). Useful for long streams
/// where storing the window is unnecessary.
class RunningStats {
public:
    void add(double x);
    void reset();

    std::size_t count() const { return n_; }
    double mean() const { return mean_; }
    /// Population variance; 0 when fewer than 2 samples.
    double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0; }
    /// Sample variance (n-1 denominator); 0 when fewer than 2 samples.
    double sample_variance() const {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }

private:
    std::size_t n_{0};
    double mean_{0.0};
    double m2_{0.0};
    double min_{0.0};
    double max_{0.0};
};

/// Root-mean-square error between two equally sized series.
/// Throws std::invalid_argument on size mismatch or empty input.
double rmse(std::span<const double> a, std::span<const double> b);

/// Pearson correlation coefficient; returns 0 if either series is constant.
/// Throws std::invalid_argument on size mismatch or fewer than 2 samples.
double pearson(std::span<const double> a, std::span<const double> b);

}  // namespace locble
