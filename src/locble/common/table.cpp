#include "locble/common/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace locble {

std::string fmt(double v, int precision) {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << v;
    return os.str();
}

void TextTable::add_row(std::vector<std::string> cells) {
    if (cells.size() != header_.size())
        throw std::invalid_argument("TextTable: row width mismatch");
    rows_.push_back(std::move(cells));
}

void TextTable::add_row(const std::string& label, const std::vector<double>& values,
                        int precision) {
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values) cells.push_back(fmt(v, precision));
    add_row(std::move(cells));
}

std::string TextTable::str() const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
    for (const auto& row : rows_)
        for (std::size_t i = 0; i < row.size(); ++i)
            width[i] = std::max(width[i], row[i].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& cells) {
        os << '|';
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << ' ' << cells[i] << std::string(width[i] - cells[i].size(), ' ') << " |";
        }
        os << '\n';
    };
    emit(header_);
    os << '|';
    for (std::size_t i = 0; i < header_.size(); ++i)
        os << std::string(width[i] + 2, '-') << '|';
    os << '\n';
    for (const auto& row : rows_) emit(row);
    return os.str();
}

}  // namespace locble
