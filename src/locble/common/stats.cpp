#include "locble/common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace locble {

double quantile(std::span<const double> values, double q) {
    if (values.empty()) throw std::invalid_argument("quantile: empty input");
    if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
    std::vector<double> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean(std::span<const double> values) {
    if (values.empty()) throw std::invalid_argument("mean: empty input");
    double s = 0.0;
    for (double v : values) s += v;
    return s / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
    if (values.empty()) throw std::invalid_argument("variance: empty input");
    const double m = mean(values);
    double s = 0.0;
    for (double v : values) s += (v - m) * (v - m);
    return s / static_cast<double>(values.size());
}

WindowSummary summarize(std::span<const double> values) {
    if (values.empty()) throw std::invalid_argument("summarize: empty input");
    WindowSummary s;
    s.count = values.size();
    s.mean = mean(values);

    double m2 = 0.0, m3 = 0.0, m4 = 0.0;
    for (double v : values) {
        const double d = v - s.mean;
        m2 += d * d;
        m3 += d * d * d;
        m4 += d * d * d * d;
    }
    const auto n = static_cast<double>(values.size());
    m2 /= n;
    m3 /= n;
    m4 /= n;
    s.variance = m2;
    s.stddev = std::sqrt(m2);
    constexpr double kVarEps = 1e-12;
    s.skewness = m2 > kVarEps ? m3 / std::pow(m2, 1.5) : 0.0;
    s.kurtosis = m2 > kVarEps ? m4 / (m2 * m2) - 3.0 : 0.0;

    std::vector<double> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    s.min = sorted.front();
    s.max = sorted.back();
    s.q1 = quantile(sorted, 0.25);
    s.median = quantile(sorted, 0.50);
    s.q3 = quantile(sorted, 0.75);
    return s;
}

void RunningStats::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::stddev() const { return std::sqrt(variance()); }

double rmse(std::span<const double> a, std::span<const double> b) {
    if (a.size() != b.size()) throw std::invalid_argument("rmse: size mismatch");
    if (a.empty()) throw std::invalid_argument("rmse: empty input");
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
    return std::sqrt(s / static_cast<double>(a.size()));
}

double pearson(std::span<const double> a, std::span<const double> b) {
    if (a.size() != b.size()) throw std::invalid_argument("pearson: size mismatch");
    if (a.size() < 2) throw std::invalid_argument("pearson: need >=2 samples");
    const double ma = mean(a);
    const double mb = mean(b);
    double sab = 0.0, sa = 0.0, sb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        sab += (a[i] - ma) * (b[i] - mb);
        sa += (a[i] - ma) * (a[i] - ma);
        sb += (b[i] - mb) * (b[i] - mb);
    }
    if (sa <= 0.0 || sb <= 0.0) return 0.0;
    return sab / std::sqrt(sa * sb);
}

}  // namespace locble
