#include "locble/common/vec2.hpp"

#include <numbers>

namespace locble {

double wrap_angle(double radians) {
    constexpr double two_pi = 2.0 * std::numbers::pi;
    double a = std::fmod(radians, two_pi);
    if (a <= -std::numbers::pi) a += two_pi;
    if (a > std::numbers::pi) a -= two_pi;
    return a;
}

double angle_diff(double a, double b) { return wrap_angle(a - b); }

}  // namespace locble
