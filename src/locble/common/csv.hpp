#pragma once

#include <string>
#include <vector>

namespace locble {

/// A parsed CSV document: a header row plus data rows of doubles.
/// Used for recording and replaying simulated sensor traces so that an
/// experiment's raw data can be inspected or re-run offline.
struct CsvTable {
    std::vector<std::string> header;
    std::vector<std::vector<double>> rows;

    /// Index of a header column; throws std::out_of_range if absent.
    std::size_t column(const std::string& name) const;
    /// All values of one named column.
    std::vector<double> column_values(const std::string& name) const;
};

/// Serialize to CSV text (header + fixed-precision rows).
std::string to_csv(const CsvTable& table);

/// Parse CSV text. Throws std::runtime_error on ragged rows or non-numeric
/// cells.
CsvTable parse_csv(const std::string& text);

/// Write CSV text to a file; throws std::runtime_error on IO failure.
void write_csv_file(const std::string& path, const CsvTable& table);

/// Read and parse a CSV file; throws std::runtime_error on IO failure.
CsvTable read_csv_file(const std::string& path);

}  // namespace locble
