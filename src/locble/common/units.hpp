#pragma once

#include <cmath>
#include <numbers>

namespace locble {

/// dBm <-> milliwatt conversions and small dB helpers.
///
/// The channel simulator composes gains multiplicatively in linear power and
/// reports RSSI in dBm, matching what a BLE scan callback delivers.
inline double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }
inline double mw_to_dbm(double mw) { return 10.0 * std::log10(mw); }

/// Ratio (linear power gain) to dB and back.
inline double ratio_to_db(double ratio) { return 10.0 * std::log10(ratio); }
inline double db_to_ratio(double db) { return std::pow(10.0, db / 10.0); }

inline double deg_to_rad(double deg) { return deg * std::numbers::pi / 180.0; }
inline double rad_to_deg(double rad) { return rad * 180.0 / std::numbers::pi; }

}  // namespace locble
