#pragma once

#include <string>
#include <vector>

namespace locble {

/// Minimal markdown-style table builder used by the bench binaries to print
/// the rows/series each paper table or figure reports.
class TextTable {
public:
    explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

    /// Append a row of already formatted cells. Throws std::invalid_argument
    /// when the cell count does not match the header.
    void add_row(std::vector<std::string> cells);

    /// Convenience: format doubles with `precision` decimals.
    void add_row(const std::string& label, const std::vector<double>& values,
                 int precision = 2);

    std::string str() const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision.
std::string fmt(double v, int precision = 2);

}  // namespace locble
