#include "locble/common/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace locble {

std::size_t CsvTable::column(const std::string& name) const {
    for (std::size_t i = 0; i < header.size(); ++i)
        if (header[i] == name) return i;
    throw std::out_of_range("CsvTable: no column named " + name);
}

std::vector<double> CsvTable::column_values(const std::string& name) const {
    const std::size_t idx = column(name);
    std::vector<double> out;
    out.reserve(rows.size());
    for (const auto& row : rows) out.push_back(row.at(idx));
    return out;
}

std::string to_csv(const CsvTable& table) {
    std::ostringstream os;
    for (std::size_t i = 0; i < table.header.size(); ++i) {
        if (i) os << ',';
        os << table.header[i];
    }
    os << '\n';
    os.precision(15);
    for (const auto& row : table.rows) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i) os << ',';
            os << row[i];
        }
        os << '\n';
    }
    return os.str();
}

CsvTable parse_csv(const std::string& text) {
    CsvTable table;
    std::istringstream is(text);
    std::string line;
    bool have_header = false;
    std::size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty()) continue;
        std::istringstream ls(line);
        std::string cell;
        if (!have_header) {
            while (std::getline(ls, cell, ',')) table.header.push_back(cell);
            have_header = true;
            continue;
        }
        std::vector<double> row;
        while (std::getline(ls, cell, ',')) {
            try {
                std::size_t consumed = 0;
                const double v = std::stod(cell, &consumed);
                if (consumed != cell.size())
                    throw std::runtime_error("trailing characters");
                row.push_back(v);
            } catch (const std::exception&) {
                throw std::runtime_error("parse_csv: non-numeric cell '" + cell +
                                         "' at line " + std::to_string(line_no));
            }
        }
        if (row.size() != table.header.size())
            throw std::runtime_error("parse_csv: ragged row at line " +
                                     std::to_string(line_no));
        table.rows.push_back(std::move(row));
    }
    return table;
}

void write_csv_file(const std::string& path, const CsvTable& table) {
    std::ofstream f(path);
    if (!f) throw std::runtime_error("write_csv_file: cannot open " + path);
    f << to_csv(table);
    if (!f) throw std::runtime_error("write_csv_file: write failed for " + path);
}

CsvTable read_csv_file(const std::string& path) {
    std::ifstream f(path);
    if (!f) throw std::runtime_error("read_csv_file: cannot open " + path);
    std::ostringstream os;
    os << f.rdbuf();
    return parse_csv(os.str());
}

}  // namespace locble
